//! Differential conformance harness: fuzz `analyze()` against `simulate()`.
//!
//! The paper's credibility rests on Figure 9: the closed-form model tracks
//! RTL simulation within a few percent. This module machine-checks our
//! analog of that claim. A seeded generator draws random valid
//! (layer, dataflow, accelerator) triples, runs both the analytical model
//! and the step-driven simulator on each, classifies per-metric divergence
//! against configurable tolerances, and greedily **shrinks** every failing
//! triple to a minimal reproducer printed as a ready-to-paste regression
//! test (DSL text + builder code).
//!
//! The run is bit-identically reproducible from its seed: generation is a
//! single sequential stream off [`proptest::TestRng`], and both engines
//! are deterministic.
//!
//! Counters (`maestro.conform.*`): `cases`, `diverged`, `shrunk`,
//! `skipped` — exposed through the usual `maestro-obs` registry.

use crate::engine::{simulate, SimError, SimOptions};
use crate::validate::error_pct;
use maestro_core::analyze;
use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::{Dataflow, Directive, SizeExpr, Style};
use proptest::TestRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

fn counter(
    which: &'static OnceLock<maestro_obs::Counter>,
    name: &str,
) -> &'static maestro_obs::Counter {
    which.get_or_init(|| maestro_obs::registry().counter(name))
}

fn cases_counter() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    counter(&C, "maestro.conform.cases")
}

fn diverged_counter() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    counter(&C, "maestro.conform.diverged")
}

fn shrunk_counter() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    counter(&C, "maestro.conform.shrunk")
}

fn skipped_counter() -> &'static maestro_obs::Counter {
    static C: OnceLock<maestro_obs::Counter> = OnceLock::new();
    counter(&C, "maestro.conform.skipped")
}

/// The metric on which model and simulator are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Runtime in cycles (relative error).
    Runtime,
    /// L1 fill traffic, total elements written (relative error).
    L1Fill,
    /// L2 traffic, total reads + writes (relative error).
    L2Traffic,
    /// PE utilization (absolute error).
    Utilization,
    /// Simulator MAC count vs the layer's exact count (must be equal).
    SimMacs,
    /// Model dense MAC count vs the layer's exact count (relative error).
    ModelMacs,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::Runtime => "runtime",
            Metric::L1Fill => "l1-fill",
            Metric::L2Traffic => "l2-traffic",
            Metric::Utilization => "utilization",
            Metric::SimMacs => "sim-macs",
            Metric::ModelMacs => "model-macs",
        };
        f.write_str(s)
    }
}

/// Per-metric divergence tolerances. Percentages are relative to the
/// simulator (reference) side; utilization is absolute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Max runtime error, percent.
    pub runtime_pct: f64,
    /// Max L1-fill error, percent.
    pub l1_pct: f64,
    /// Max L2-traffic error, percent.
    pub l2_pct: f64,
    /// Max absolute utilization difference.
    pub utilization_abs: f64,
    /// Max model-MACs-vs-exact error, percent (the model may overcount
    /// edge-padded spatial chunks; the simulator must not).
    pub model_macs_pct: f64,
}

impl Default for Tolerances {
    /// Defaults calibrated on the fixed-seed CI run after this module's
    /// bug hunt: tight enough to catch the divergence classes it found,
    /// with margin over the residual closed-form-vs-enumeration noise.
    fn default() -> Self {
        Tolerances {
            runtime_pct: 45.0,
            l1_pct: 45.0,
            l2_pct: 45.0,
            utilization_abs: 0.30,
            model_macs_pct: 30.0,
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConformConfig {
    /// PRNG seed; same seed → bit-identical report.
    pub seed: u64,
    /// Number of triples to generate.
    pub cases: u64,
    /// Divergence tolerances.
    pub tol: Tolerances,
    /// Simulator step budget per case (larger schedules are skipped).
    pub max_steps: u64,
}

impl Default for ConformConfig {
    fn default() -> Self {
        ConformConfig {
            seed: 0,
            cases: 500,
            tol: Tolerances::default(),
            max_steps: 100_000,
        }
    }
}

/// One generated (layer, dataflow, accelerator) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    /// The layer.
    pub layer: Layer,
    /// The dataflow.
    pub dataflow: Dataflow,
    /// The accelerator.
    pub acc: Accelerator,
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} / {} PEs bw{}",
            self.layer,
            self.dataflow.name(),
            self.acc.num_pes,
            self.acc.noc.bandwidth
        )
    }
}

/// One metric's measured divergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Which metric diverged.
    pub metric: Metric,
    /// Model-side value.
    pub model: f64,
    /// Simulator-side value.
    pub sim: f64,
    /// The error that exceeded tolerance (percent, or absolute for
    /// utilization / MAC-count deltas).
    pub error: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.metric {
            Metric::Utilization => write!(
                f,
                "{}: model {:.3} vs sim {:.3} (|Δ| {:.3})",
                self.metric, self.model, self.sim, self.error
            ),
            Metric::SimMacs => write!(
                f,
                "{}: sim {} vs exact {} (Δ {})",
                self.metric, self.sim, self.model, self.error
            ),
            _ => write!(
                f,
                "{}: model {:.1} vs sim {:.1} ({:.1}%)",
                self.metric, self.model, self.sim, self.error
            ),
        }
    }
}

/// Why a generated case was not compared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkipReason {
    /// The dataflow does not resolve onto the layer/accelerator (both
    /// engines reject it identically).
    Resolve(String),
    /// The analytical model failed for a non-resolve reason.
    Analysis(String),
    /// The schedule exceeds the step budget.
    TooManySteps,
}

/// Outcome of checking one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CaseOutcome {
    /// All metrics within tolerance.
    Agree,
    /// At least one metric out of tolerance.
    Diverged(Vec<Divergence>),
    /// Not comparable.
    Skipped(SkipReason),
}

/// A diverging case, its shrunk minimal form, and the generated
/// regression-test reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DivergentCase {
    /// Index in the generation stream (0-based).
    pub index: u64,
    /// The case as generated.
    pub original: Case,
    /// The greedily minimized case (still diverging on at least one of the
    /// original metrics).
    pub shrunk: Case,
    /// Divergences measured on the shrunk case.
    pub divergences: Vec<Divergence>,
    /// Ready-to-paste regression test (DSL text + builder code).
    pub reproducer: String,
}

/// Aggregate result of a conformance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformReport {
    /// The seed that reproduces this report.
    pub seed: u64,
    /// Cases generated.
    pub cases: u64,
    /// Cases compared (not skipped).
    pub compared: u64,
    /// Cases skipped, by reason counts: resolve / analysis / step budget.
    pub skipped_resolve: u64,
    /// Skipped because the model failed for a non-resolve reason.
    pub skipped_analysis: u64,
    /// Skipped because the schedule exceeded the step budget.
    pub skipped_steps: u64,
    /// `true` when the run was cancelled (signal or `--max-seconds`
    /// deadline) before every case was checked: the counts above cover
    /// only the cases reached. Always `false` for completed runs.
    pub interrupted: bool,
    /// Every diverging case with its shrunk reproducer.
    pub diverged: Vec<DivergentCase>,
}

impl ConformReport {
    /// `true` when no compared case diverged.
    pub fn is_clean(&self) -> bool {
        self.diverged.is_empty()
    }
}

/// Draw one element of a slice.
fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// Generate a random valid layer (conv / grouped / depthwise / FC over
/// small dims with strides and edge-truncating extents).
fn gen_layer(rng: &mut TestRng) -> Layer {
    let r = 1 + rng.below(4);
    let s = 1 + rng.below(4);
    let k = 1 + rng.below(20);
    let dims = LayerDims {
        n: 1 + rng.below(2),
        k,
        c: 1 + rng.below(12),
        y: r + rng.below(13),
        x: s + rng.below(13),
        r,
        s,
        stride_y: 1 + rng.below(3),
        stride_x: 1 + rng.below(3),
    };
    let op = match rng.below(8) {
        0 => Operator::DepthwiseConv2d,
        1 => Operator::FullyConnected,
        2 => {
            // Grouped conv: pick a group count dividing K.
            let g = *pick(rng, &[2u32, 3, 4]);
            if dims.k.is_multiple_of(u64::from(g)) {
                Operator::Conv2d { groups: g }
            } else {
                Operator::conv2d()
            }
        }
        _ => Operator::conv2d(),
    };
    Layer::new("fuzz", op, dims)
}

/// Generate a dataflow: a Table 3 style in canonical form or one of
/// `maestro-dse`'s tile-size variants with randomized mapping sizes.
fn gen_dataflow(rng: &mut TestRng) -> Dataflow {
    use maestro_dse::variants::{kcp_variant, xp_variant, yrp_variant, yxp_variant};
    let style = *pick(rng, &Style::ALL);
    if rng.below(3) == 0 {
        return style.dataflow();
    }
    match style {
        Style::KCP => kcp_variant(
            *pick(rng, &[1, 2, 3, 4, 8, 16]),
            1 + rng.below(4),
            1 + rng.below(4),
        ),
        Style::YRP => yrp_variant(
            1 + rng.below(4),
            *pick(rng, &[1, 2, 4, 8]),
            1 + rng.below(3),
        ),
        Style::XP => xp_variant(*pick(rng, &[1, 2, 3, 4, 8])),
        Style::YXP => yxp_variant(*pick(rng, &[2, 3, 4, 8, 16]), *pick(rng, &[1, 2, 4, 8])),
        Style::CP => style.dataflow(),
    }
}

/// Generate an accelerator off the DSE sweep grids (paper §5.2's four
/// hardware parameters).
fn gen_accelerator(rng: &mut TestRng) -> Accelerator {
    let space = maestro_dse::SweepSpace::standard();
    // Cap PEs: the simulator enumerates the unit grid per step, and the
    // interesting edge/clamping behaviour already appears at small scale.
    let pes: Vec<u64> = space.pes.iter().copied().filter(|&p| p <= 256).collect();
    Accelerator::builder(*pick(rng, &pes))
        .noc_bandwidth(*pick(rng, &space.noc_bw))
        .l1_bytes(*pick(rng, &space.l1_bytes))
        .l2_bytes(*pick(rng, &space.l2_bytes))
        .build()
}

/// Generate the next case in the seeded stream.
pub fn gen_case(rng: &mut TestRng) -> Case {
    Case {
        layer: gen_layer(rng),
        dataflow: gen_dataflow(rng),
        acc: gen_accelerator(rng),
    }
}

/// Run both engines on `case` and classify the outcome against `tol`.
pub fn check_case(case: &Case, tol: &Tolerances, max_steps: u64) -> CaseOutcome {
    let model = match analyze(&case.layer, &case.dataflow, &case.acc) {
        Ok(m) => m,
        Err(maestro_core::AnalysisError::Resolve(e)) => {
            return CaseOutcome::Skipped(SkipReason::Resolve(e.to_string()))
        }
        Err(e) => return CaseOutcome::Skipped(SkipReason::Analysis(e.to_string())),
    };
    let sim = match simulate(
        &case.layer,
        &case.dataflow,
        &case.acc,
        SimOptions { max_steps },
    ) {
        Ok(s) => s,
        Err(SimError::Resolve(e)) => {
            return CaseOutcome::Skipped(SkipReason::Resolve(e.to_string()))
        }
        Err(SimError::TooManySteps { .. }) => {
            return CaseOutcome::Skipped(SkipReason::TooManySteps)
        }
    };
    let exact = case.layer.total_macs();
    let mut divs = Vec::new();
    let mut rel = |metric: Metric, model_v: f64, sim_v: f64, bound: f64| {
        let err = error_pct(model_v, sim_v);
        if err > bound {
            divs.push(Divergence {
                metric,
                model: model_v,
                sim: sim_v,
                error: err,
            });
        }
    };
    rel(Metric::Runtime, model.runtime, sim.cycles, tol.runtime_pct);
    rel(
        Metric::L1Fill,
        model.counts.l1_write.total(),
        sim.counts.l1_write.total(),
        tol.l1_pct,
    );
    rel(
        Metric::L2Traffic,
        model.counts.l2_read.total() + model.counts.l2_write.total(),
        sim.counts.l2_read.total() + sim.counts.l2_write.total(),
        tol.l2_pct,
    );
    rel(
        Metric::ModelMacs,
        model.macs_dense,
        exact as f64,
        tol.model_macs_pct,
    );
    let util_err = (model.utilization - sim.utilization).abs();
    if util_err > tol.utilization_abs {
        divs.push(Divergence {
            metric: Metric::Utilization,
            model: model.utilization,
            sim: sim.utilization,
            error: util_err,
        });
    }
    if sim.macs != exact {
        divs.push(Divergence {
            metric: Metric::SimMacs,
            model: exact as f64,
            sim: sim.macs as f64,
            error: (sim.macs as f64 - exact as f64).abs(),
        });
    }
    if divs.is_empty() {
        CaseOutcome::Agree
    } else {
        CaseOutcome::Diverged(divs)
    }
}

/// Whether `candidate` still diverges on at least one of `failing`.
fn still_fails(candidate: &Case, tol: &Tolerances, max_steps: u64, failing: &[Metric]) -> bool {
    if candidate.layer.validate().is_err() {
        return false;
    }
    match check_case(candidate, tol, max_steps) {
        CaseOutcome::Diverged(divs) => divs.iter().any(|d| failing.contains(&d.metric)),
        _ => false,
    }
}

/// Greedily shrink a failing case: repeatedly try to halve/decrement each
/// layer dimension, stride, and the accelerator's PE count and NoC width,
/// keeping any move after which the case still diverges on one of the
/// originally failing metrics. Bounded by an evaluation budget.
pub fn shrink(case: &Case, tol: &Tolerances, max_steps: u64, failing: &[Metric]) -> Case {
    let mut best = case.clone();
    let mut evals = 0u32;
    const BUDGET: u32 = 400;
    loop {
        let mut improved = false;
        // Candidate moves, most aggressive first. Each returns a mutated
        // copy, or None when the move is a no-op.
        let dim_move = |c: &Case, f: fn(&mut LayerDims, bool) -> bool, halve: bool| {
            let mut n = c.clone();
            f(&mut n.layer.dims, halve).then_some(n)
        };
        fn shrink_to(v: &mut u64, lo: u64, halve: bool) -> bool {
            let next = if halve {
                (*v / 2).max(lo)
            } else {
                v.saturating_sub(1).max(lo)
            };
            if next < *v {
                *v = next;
                true
            } else {
                false
            }
        }
        type Move = Box<dyn Fn(&Case, bool) -> Option<Case>>;
        let moves: Vec<Move> = vec![
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.n, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.k, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.c, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.y, d.r, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.x, d.s, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.r, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.s, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.stride_y, 1, h), h)),
            Box::new(move |c, h| dim_move(c, |d, h| shrink_to(&mut d.stride_x, 1, h), h)),
            Box::new(|c, h| {
                let mut n = c.clone();
                let mut pes = n.acc.num_pes;
                shrink_to(&mut pes, 1, h).then(|| {
                    n.acc.num_pes = pes;
                    n
                })
            }),
            Box::new(|c, h| {
                let mut n = c.clone();
                let mut bw = n.acc.noc.bandwidth;
                shrink_to(&mut bw, 1, h).then(|| {
                    n.acc = Accelerator::builder(n.acc.num_pes)
                        .noc_bandwidth(bw)
                        .l1_bytes(n.acc.l1_bytes)
                        .l2_bytes(n.acc.l2_bytes)
                        .build();
                    n
                })
            }),
        ];
        'moves: for halve in [true, false] {
            for mv in &moves {
                if let Some(cand) = mv(&best, halve) {
                    if evals >= BUDGET {
                        break 'moves;
                    }
                    evals += 1;
                    if still_fails(&cand, tol, max_steps, failing) {
                        best = cand;
                        improved = true;
                    }
                }
            }
        }
        if !improved || evals >= BUDGET {
            break;
        }
    }
    best
}

/// Rust builder-code form of a size expression.
fn expr_code(e: &SizeExpr) -> String {
    match e {
        SizeExpr::Const(v) => format!("SizeExpr::lit({v})"),
        SizeExpr::Size(d) => format!("SizeExpr::size(Dim::{d})"),
        SizeExpr::Add(a, b) => format!("{}.add({})", expr_code(a), expr_code(b)),
        SizeExpr::Sub(a, b) => format!("{}.sub({})", expr_code(a), expr_code(b)),
    }
}

/// Rust builder-code form of a dataflow.
fn dataflow_code(df: &Dataflow) -> String {
    let mut s = format!("Dataflow::builder({:?})", df.name());
    for d in df.directives() {
        s.push_str("\n        ");
        match d {
            Directive::TemporalMap { size, offset, dim } => {
                s.push_str(&format!(
                    ".temporal({}, {}, Dim::{dim})",
                    expr_code(size),
                    expr_code(offset)
                ));
            }
            Directive::SpatialMap { size, offset, dim } => {
                s.push_str(&format!(
                    ".spatial({}, {}, Dim::{dim})",
                    expr_code(size),
                    expr_code(offset)
                ));
            }
            Directive::Cluster(size) => {
                s.push_str(&format!(".cluster({})", expr_code(size)));
            }
        }
    }
    s.push_str("\n        .build()");
    s
}

/// Rust constructor-code form of the layer's operator.
fn operator_code(op: &Operator) -> String {
    match op {
        Operator::Conv2d { groups: 1 } => "Operator::conv2d()".into(),
        Operator::Conv2d { groups } => format!("Operator::Conv2d {{ groups: {groups} }}"),
        Operator::DepthwiseConv2d => "Operator::DepthwiseConv2d".into(),
        Operator::TransposedConv2d { upsample } => {
            format!("Operator::TransposedConv2d {{ upsample: {upsample} }}")
        }
        Operator::FullyConnected => "Operator::FullyConnected".into(),
        Operator::Pooling => "Operator::Pooling".into(),
        Operator::ElementwiseAdd => "Operator::ElementwiseAdd".into(),
    }
}

/// Render the ready-to-paste regression test for a shrunk case.
pub fn reproducer(case: &Case, divs: &[Divergence], seed: u64, index: u64) -> String {
    let d = &case.layer.dims;
    let mut out = String::new();
    out.push_str("// Minimized by `maestro conform`; DSL form of the dataflow:\n");
    for line in case.dataflow.to_string().lines() {
        out.push_str("//   ");
        out.push_str(line);
        out.push('\n');
    }
    for div in divs {
        out.push_str(&format!("// diverged — {div}\n"));
    }
    out.push_str(&format!(
        "#[test]\nfn conform_repro_seed{seed}_case{index}() {{\n"
    ));
    out.push_str(&format!(
        "    let layer = Layer::new(\n        \"repro\",\n        {},\n        LayerDims {{ n: {}, k: {}, c: {}, y: {}, x: {}, r: {}, s: {}, stride_y: {}, stride_x: {} }},\n    );\n",
        operator_code(&case.layer.op),
        d.n, d.k, d.c, d.y, d.x, d.r, d.s, d.stride_y, d.stride_x
    ));
    out.push_str(&format!(
        "    let df = {};\n",
        dataflow_code(&case.dataflow)
    ));
    out.push_str(&format!(
        "    let acc = Accelerator::builder({})\n        .noc_bandwidth({})\n        .l1_bytes({})\n        .l2_bytes({})\n        .build();\n",
        case.acc.num_pes, case.acc.noc.bandwidth, case.acc.l1_bytes, case.acc.l2_bytes
    ));
    out.push_str(
        "    let p = validate_layer(&layer, &df, &acc, SimOptions::default()).unwrap();\n",
    );
    out.push_str("    assert_eq!(p.sim_macs, p.exact_macs);\n");
    out.push_str("    assert!(p.runtime_error_pct() < 40.0, \"{}\", p.runtime_error_pct());\n");
    out.push_str("}\n");
    out
}

/// Run the conformance harness: generate `cfg.cases` triples from
/// `cfg.seed`, compare model and simulator on each, and shrink every
/// divergence to a minimal reproducer. Deterministic: the same config
/// always produces an identical report.
pub fn run_conform(cfg: &ConformConfig) -> ConformReport {
    run_conform_cancellable(cfg, &maestro_obs::CancelToken::detached())
}

/// [`run_conform`] polling a cooperative cancellation token at each case
/// boundary — the same token the DSE sessions use, so `SIGINT`/`SIGTERM`
/// or a `--max-seconds` deadline drains the current case and returns the
/// partial report with [`ConformReport::interrupted`] set instead of
/// throwing the finished cases away. Up to the point of interruption the
/// case sequence is identical to an uncancelled run's (the generator RNG
/// does not observe the token).
pub fn run_conform_cancellable(
    cfg: &ConformConfig,
    token: &maestro_obs::CancelToken,
) -> ConformReport {
    let _span = maestro_obs::span::span("maestro.conform.run");
    // Touch every counter up front so a clean run still exposes them.
    let (c_cases, c_div, c_shrunk, c_skip) = (
        cases_counter(),
        diverged_counter(),
        shrunk_counter(),
        skipped_counter(),
    );
    let mut rng = TestRng::from_seed(cfg.seed);
    let mut report = ConformReport {
        seed: cfg.seed,
        cases: cfg.cases,
        compared: 0,
        skipped_resolve: 0,
        skipped_analysis: 0,
        skipped_steps: 0,
        interrupted: false,
        diverged: Vec::new(),
    };
    for index in 0..cfg.cases {
        if token.is_cancelled() {
            report.interrupted = true;
            report.cases = index;
            break;
        }
        let case = gen_case(&mut rng);
        c_cases.inc();
        match check_case(&case, &cfg.tol, cfg.max_steps) {
            CaseOutcome::Agree => report.compared += 1,
            CaseOutcome::Skipped(reason) => {
                c_skip.inc();
                match reason {
                    SkipReason::Resolve(_) => report.skipped_resolve += 1,
                    SkipReason::Analysis(_) => report.skipped_analysis += 1,
                    SkipReason::TooManySteps => report.skipped_steps += 1,
                }
            }
            CaseOutcome::Diverged(divs) => {
                report.compared += 1;
                c_div.inc();
                maestro_obs::warn!(
                    "conform divergence at case {index} (seed {}): {}",
                    cfg.seed,
                    case
                );
                let failing: Vec<Metric> = divs.iter().map(|d| d.metric).collect();
                let shrunk = shrink(&case, &cfg.tol, cfg.max_steps, &failing);
                c_shrunk.inc();
                let final_divs = match check_case(&shrunk, &cfg.tol, cfg.max_steps) {
                    CaseOutcome::Diverged(d) => d,
                    // The shrinker only accepts still-failing candidates,
                    // so this arm is unreachable; keep the original list.
                    _ => divs,
                };
                let repro = reproducer(&shrunk, &final_divs, cfg.seed, index);
                report.diverged.push(DivergentCase {
                    index,
                    original: case,
                    shrunk,
                    divergences: final_divs,
                    reproducer: repro,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..50 {
            assert_eq!(gen_case(&mut a), gen_case(&mut b));
        }
    }

    #[test]
    fn generated_layers_validate() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..500 {
            let case = gen_case(&mut rng);
            case.layer
                .validate()
                .expect("generated layer must be valid");
        }
    }

    #[test]
    fn cancelled_conform_returns_partial_report() {
        let cfg = ConformConfig {
            cases: 50,
            ..ConformConfig::default()
        };
        let token = maestro_obs::CancelToken::detached();
        token.cancel();
        let report = run_conform_cancellable(&cfg, &token);
        assert!(report.interrupted);
        assert_eq!(report.cases, 0, "cancelled before the first case");

        let full = run_conform_cancellable(&cfg, &maestro_obs::CancelToken::detached());
        assert!(!full.interrupted);
        assert_eq!(full.cases, 50);
        assert_eq!(full, run_conform(&cfg), "detached token ≡ plain run");
    }

    #[test]
    fn check_flags_an_obvious_divergence() {
        // Zero tolerances: essentially any non-trivial case must diverge
        // on at least one metric (closed form never matches enumeration
        // to the last ulp on every metric at once).
        let tol = Tolerances {
            runtime_pct: 0.0,
            l1_pct: 0.0,
            l2_pct: 0.0,
            utilization_abs: 0.0,
            model_macs_pct: 0.0,
        };
        let mut rng = TestRng::from_seed(3);
        let mut diverged = 0;
        for _ in 0..20 {
            let case = gen_case(&mut rng);
            if matches!(check_case(&case, &tol, 100_000), CaseOutcome::Diverged(_)) {
                diverged += 1;
            }
        }
        assert!(diverged > 0, "zero tolerance must flag divergences");
    }

    #[test]
    fn shrink_produces_smaller_still_failing_case() {
        let tol = Tolerances {
            runtime_pct: 0.0,
            l1_pct: 0.0,
            l2_pct: 0.0,
            utilization_abs: 0.0,
            model_macs_pct: 0.0,
        };
        let mut rng = TestRng::from_seed(5);
        for _ in 0..40 {
            let case = gen_case(&mut rng);
            if let CaseOutcome::Diverged(divs) = check_case(&case, &tol, 100_000) {
                let failing: Vec<Metric> = divs.iter().map(|d| d.metric).collect();
                let small = shrink(&case, &tol, 100_000, &failing);
                assert!(still_fails(&small, &tol, 100_000, &failing));
                let size = |c: &Case| {
                    let d = &c.layer.dims;
                    d.n + d.k + d.c + d.y + d.x + d.r + d.s + c.acc.num_pes
                };
                assert!(size(&small) <= size(&case));
                return;
            }
        }
        panic!("no divergence found to shrink at zero tolerance");
    }

    #[test]
    fn reproducer_contains_builder_and_dsl() {
        let mut rng = TestRng::from_seed(9);
        let case = gen_case(&mut rng);
        let text = reproducer(&case, &[], 9, 0);
        assert!(text.contains("Dataflow::builder"));
        assert!(text.contains("LayerDims {"));
        assert!(text.contains("Accelerator::builder"));
        assert!(text.contains("// Minimized by `maestro conform`"));
        assert!(text.contains("#[test]"));
    }

    #[test]
    fn run_is_bit_identical_from_same_seed() {
        let cfg = ConformConfig {
            seed: 21,
            cases: 40,
            ..ConformConfig::default()
        };
        let a = run_conform(&cfg);
        let b = run_conform(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.cases, 40);
    }
}

//! Mapping inspection: which tensor coordinates each PE holds at a given
//! time step (paper Figure 6's tables).

use crate::engine::SimError;
use crate::flat::{tensor_axis_interval, FlatSchedule, Interval};
use maestro_core::level::LevelCtx;
use maestro_dnn::{Dim, Layer, TensorKind, ALL_DIMS};
use maestro_ir::{resolve, Dataflow};
use serde::{Deserialize, Serialize};

/// The data one PE holds at one time step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeMapping {
    /// Flat PE index.
    pub pe: u64,
    /// Per-level unit coordinates (outermost first).
    pub unit_coords: Vec<u64>,
    /// Per-tensor list of `(dim, interval)` coordinate ranges, in the
    /// tensor's own coordinates (input rows for `Y`, output rows for the
    /// output tensor, etc.).
    pub ranges: [Vec<(Dim, Interval)>; 3],
}

impl PeMapping {
    /// The coordinate interval of `dim` in tensor `kind`, if coupled.
    pub fn range(&self, kind: TensorKind, dim: Dim) -> Option<Interval> {
        self.ranges[kind as usize]
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, iv)| *iv)
    }
}

/// Compute the per-PE mapping of `layer` under `dataflow` at time `step`.
///
/// # Errors
///
/// Fails when the dataflow cannot be resolved or `step` is beyond the end
/// of the schedule.
pub fn mapping_at_step(
    layer: &Layer,
    dataflow: &Dataflow,
    num_pes: u64,
    step: u64,
) -> Result<Vec<PeMapping>, SimError> {
    let coupling = layer.coupling();
    let resolved = resolve(dataflow, layer, num_pes)?;
    let levels: Vec<LevelCtx> = resolved
        .levels
        .iter()
        .map(|l| LevelCtx::build(&resolved, l, &coupling))
        .collect();
    let mut sched = FlatSchedule::new(levels, &coupling);
    if step.saturating_add(1) > sched.total_steps {
        return Err(SimError::TooManySteps {
            needed: step.saturating_add(1),
            limit: sched.total_steps,
        });
    }
    for _ in 0..step {
        sched.advance();
    }
    let strides = (layer.dims.stride_y, layer.dims.stride_x);

    // Enumerate the unit grid (mixed radix over per-level unit counts).
    let radices: Vec<u64> = sched.levels.iter().map(|c| c.num_units).collect();
    let total_pes: u64 = radices.iter().product();
    let mut out = Vec::with_capacity(total_pes as usize);
    for pe in 0..total_pes {
        let mut rem = pe;
        let mut coords = vec![0u64; radices.len()];
        for (i, &r) in radices.iter().enumerate().rev() {
            coords[i] = rem % r;
            rem /= r;
        }
        let ranges = TensorKind::ALL.map(|k| {
            ALL_DIMS
                .iter()
                .filter_map(|&d| {
                    tensor_axis_interval(&sched, &coupling, k, d, strides, &coords)
                        .map(|iv| (d, iv))
                })
                .collect::<Vec<_>>()
        });
        out.push(PeMapping {
            pe,
            unit_coords: coords,
            ranges,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maestro_dnn::{LayerDims, Operator};
    use maestro_ir::styles;

    /// The Figure 6 scenario: the Figure 1 layer (N2 K4 C6 Y8 X8 R3 S3) on
    /// six PEs in two clusters of three, row-stationary.
    fn figure6() -> (Layer, Dataflow) {
        let layer = Layer::new("fig1", Operator::conv2d(), LayerDims::square(2, 4, 6, 8, 3));
        (layer, styles::figure6_row_stationary())
    }

    #[test]
    fn figure6_step0_matches_paper() {
        let (layer, df) = figure6();
        let maps = mapping_at_step(&layer, &df, 6, 0).unwrap();
        assert_eq!(maps.len(), 6);
        // Paper Figure 6(d), weights at t=0: every PE in cluster 0 and 1
        // holds K 0-1, C 0-2, S 0-2; PE i within a cluster holds filter
        // row R = i.
        for m in &maps {
            let k = m.range(TensorKind::Weight, Dim::K).unwrap();
            assert_eq!((k.start, k.len), (0, 2), "PE{}: K0-1", m.pe);
            let c = m.range(TensorKind::Weight, Dim::C).unwrap();
            assert_eq!((c.start, c.len), (0, 3), "PE{}: C0-2", m.pe);
            let r = m.range(TensorKind::Weight, Dim::R).unwrap();
            assert_eq!(
                (r.start, r.len),
                (m.unit_coords[1], 1),
                "PE{}: one filter row each",
                m.pe
            );
        }
        // Inputs at t=0: cluster 0 PEs hold rows 0,1,2; cluster 1 is
        // shifted down by one output row: rows 1,2,3 (the diagonal reuse).
        for m in &maps {
            let y = m.range(TensorKind::Input, Dim::Y).unwrap();
            let expected_row = m.unit_coords[0] + m.unit_coords[1];
            assert_eq!(
                (y.start, y.len),
                (expected_row, 1),
                "PE{}: input row {}",
                m.pe,
                expected_row
            );
            let x = m.range(TensorKind::Input, Dim::X).unwrap();
            assert_eq!((x.start, x.len), (0, 3), "PE{}: input cols 0-2", m.pe);
        }
        // Outputs at t=0: cluster q produces output row q, and all three
        // PEs of a cluster share it (spatial reduction).
        for m in &maps {
            let y = m.range(TensorKind::Output, Dim::Y).unwrap();
            assert_eq!((y.start, y.len), (m.unit_coords[0], 1), "PE{}", m.pe);
            let k = m.range(TensorKind::Output, Dim::K).unwrap();
            assert_eq!((k.start, k.len), (0, 2), "PE{}", m.pe);
        }
    }

    #[test]
    fn figure6_advances_x_after_s() {
        let (layer, df) = figure6();
        // The innermost temporal loop is X (the S map covers all of S).
        // After one step, the X window slides by one output column.
        let t0 = mapping_at_step(&layer, &df, 6, 0).unwrap();
        let t1 = mapping_at_step(&layer, &df, 6, 1).unwrap();
        let x0 = t0[0].range(TensorKind::Input, Dim::X).unwrap();
        let x1 = t1[0].range(TensorKind::Input, Dim::X).unwrap();
        assert_eq!(x1.start, x0.start + 1, "input window slides one column");
        // Weights are unchanged: temporal reuse (weight stationary at the
        // unit-step granularity, as the paper notes).
        assert_eq!(
            t0[0].range(TensorKind::Weight, Dim::R),
            t1[0].range(TensorKind::Weight, Dim::R)
        );
    }

    #[test]
    fn step_out_of_range_errors() {
        let (layer, df) = figure6();
        assert!(mapping_at_step(&layer, &df, 6, u64::MAX).is_err());
    }
}

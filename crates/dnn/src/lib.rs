//! DNN workload descriptions for the MAESTRO cost model.
//!
//! This crate defines the seven canonical tensor dimensions used by the
//! data-centric dataflow notation (`N, K, C, Y, X, R, S`), the
//! dimension-coupling rules that relate those dimensions to the input
//! activation, filter weight and output activation tensors, the DNN layer
//! operators the model supports (dense/depthwise/pointwise/grouped
//! convolution, fully-connected and general GEMM, transposed convolution,
//! pooling and element-wise residual links), and a model zoo with the seven
//! networks used in the paper's evaluation (VGG16, AlexNet, ResNet-50,
//! ResNeXt-50, MobileNetV2, UNet and DCGAN).
//!
//! # Example
//!
//! ```
//! use maestro_dnn::{Layer, Operator, zoo};
//!
//! let vgg = zoo::vgg16(1);
//! let conv2 = vgg.layer("CONV2").unwrap();
//! assert_eq!(conv2.dims.k, 64);
//! assert_eq!(conv2.total_macs(), 64 * 64 * 224 * 224 * 9);
//! ```

// Library code is panic-free by policy: fallible paths return typed errors
// instead of unwrapping. Tests are exempt (compiled out under `cfg(test)`).
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod coupling;
pub mod dim;
pub mod layer;
pub mod model;
pub mod op;
pub mod parse;
pub mod zoo;

pub use coupling::{Coupling, TensorKind};
pub use dim::{Dim, DimSizes, ALL_DIMS};
pub use layer::{Density, Layer, LayerDims};
pub use model::Model;
pub use op::{Operator, OperatorClass};
pub use parse::{parse_network, write_network, ParseNetworkError};

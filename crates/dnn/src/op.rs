//! Layer operator types and their classification (paper Table 4).

use crate::coupling::Coupling;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DNN layer operator supported by the cost model.
///
/// Every operator lowers to the generic "two operands, one output,
/// dimension-coupled" form described in paper §4.4, so adding an operator
/// only requires providing its [`Coupling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// Dense 2-D convolution. `groups > 1` models grouped convolution
    /// (e.g. ResNeXt's aggregated residual blocks); the layer's `C`
    /// dimension then holds the *per-group* channel count.
    Conv2d {
        /// Number of filter groups (1 for dense convolution).
        groups: u32,
    },
    /// Depth-wise convolution: one filter per input channel, no
    /// cross-channel reduction.
    DepthwiseConv2d,
    /// Transposed ("up-scale") convolution, modeled as a dense convolution
    /// over the zero-upsampled input; the upsampling factor induces
    /// structured input sparsity which the layer's density captures.
    TransposedConv2d {
        /// Spatial upsampling factor (the transposed stride).
        upsample: u32,
    },
    /// Fully-connected layer / general matrix multiply.
    FullyConnected,
    /// Max/average pooling (single-operand window reduction).
    Pooling,
    /// Element-wise residual addition (skip connection).
    ElementwiseAdd,
}

impl Operator {
    /// Dense convolution with a single group.
    pub const fn conv2d() -> Self {
        Operator::Conv2d { groups: 1 }
    }

    /// The dimension coupling of this operator.
    pub fn coupling(&self) -> Coupling {
        match self {
            Operator::Conv2d { .. } | Operator::TransposedConv2d { .. } => Coupling::conv2d(),
            Operator::DepthwiseConv2d => Coupling::depthwise(),
            Operator::FullyConnected => Coupling::gemm(),
            Operator::Pooling => Coupling::pooling(),
            Operator::ElementwiseAdd => Coupling::elementwise(),
        }
    }

    /// `true` if the operator performs multiply-accumulates (pooling and
    /// residual adds count element operations instead, which the model
    /// treats as MAC-equivalent for timing).
    pub const fn is_mac_op(&self) -> bool {
        !matches!(self, Operator::Pooling | Operator::ElementwiseAdd)
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Conv2d { groups: 1 } => write!(f, "CONV2D"),
            Operator::Conv2d { groups } => write!(f, "CONV2D(groups={groups})"),
            Operator::DepthwiseConv2d => write!(f, "DWCONV"),
            Operator::TransposedConv2d { upsample } => write!(f, "TRCONV(x{upsample})"),
            Operator::FullyConnected => write!(f, "FC"),
            Operator::Pooling => write!(f, "POOL"),
            Operator::ElementwiseAdd => write!(f, "ADD"),
        }
    }
}

/// The DNN-operator classes of paper Table 4 / Figure 10's legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorClass {
    /// CONV2D with large, shallow activations (C <= Y).
    EarlyConv,
    /// CONV2D with small, deep activations (C > Y).
    LateConv,
    /// 1x1 (point-wise) convolution.
    Pointwise,
    /// Depth-wise convolution.
    Depthwise,
    /// Grouped convolution inside an aggregated residual block.
    AggregatedResidual,
    /// Residual (skip-connection) element-wise addition.
    Residual,
    /// Fully-connected / GEMM.
    FullyConnected,
    /// Transposed (up-scale) convolution.
    Transposed,
    /// Pooling.
    Pooling,
}

impl OperatorClass {
    /// All classes, in Figure 10 legend order.
    pub const ALL: [OperatorClass; 9] = [
        OperatorClass::EarlyConv,
        OperatorClass::LateConv,
        OperatorClass::Pointwise,
        OperatorClass::Residual,
        OperatorClass::FullyConnected,
        OperatorClass::Depthwise,
        OperatorClass::AggregatedResidual,
        OperatorClass::Transposed,
        OperatorClass::Pooling,
    ];
}

impl fmt::Display for OperatorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OperatorClass::EarlyConv => "Early Layer",
            OperatorClass::LateConv => "Late Layer",
            OperatorClass::Pointwise => "Point-wise",
            OperatorClass::Depthwise => "Depth-wise",
            OperatorClass::AggregatedResidual => "Aggregated Residual",
            OperatorClass::Residual => "Residual",
            OperatorClass::FullyConnected => "FC",
            OperatorClass::Transposed => "Transposed",
            OperatorClass::Pooling => "Pooling",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(Operator::conv2d().to_string(), "CONV2D");
        assert_eq!(
            Operator::Conv2d { groups: 32 }.to_string(),
            "CONV2D(groups=32)"
        );
        assert_eq!(
            Operator::TransposedConv2d { upsample: 2 }.to_string(),
            "TRCONV(x2)"
        );
    }

    #[test]
    fn mac_op_classification() {
        assert!(Operator::conv2d().is_mac_op());
        assert!(Operator::FullyConnected.is_mac_op());
        assert!(!Operator::Pooling.is_mac_op());
        assert!(!Operator::ElementwiseAdd.is_mac_op());
    }

    #[test]
    fn coupling_dispatch() {
        assert_eq!(Operator::conv2d().coupling(), Coupling::conv2d());
        assert_eq!(Operator::DepthwiseConv2d.coupling(), Coupling::depthwise());
        assert_eq!(
            Operator::TransposedConv2d { upsample: 2 }.coupling(),
            Coupling::conv2d()
        );
    }
}

//! Whole-network descriptions: named sequences of layers.

use crate::layer::{Layer, LayerError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DNN model: an ordered list of layers.
///
/// ```
/// use maestro_dnn::{Layer, LayerDims, Model, Operator};
///
/// let mut m = Model::new("tiny");
/// m.push(Layer::new("c1", Operator::conv2d(), LayerDims::square(1, 8, 3, 16, 3)));
/// assert_eq!(m.len(), 1);
/// assert!(m.layer("c1").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Model name (e.g. "VGG16").
    pub name: String,
    layers: Vec<Layer>,
}

impl Model {
    /// Create an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Append a layer.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
    }

    /// The layers in network order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Look up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Iterate over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Layer> {
        self.layers.iter()
    }

    /// Total dense MAC count across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::total_macs).sum()
    }

    /// Validate every layer.
    ///
    /// # Errors
    ///
    /// Returns the first offending layer's name together with its
    /// [`LayerError`].
    pub fn validate(&self) -> Result<(), (String, LayerError)> {
        for l in &self.layers {
            l.validate().map_err(|e| (l.name.clone(), e))?;
        }
        Ok(())
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Model {} ({} layers)", self.name, self.layers.len())?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

impl Extend<Layer> for Model {
    fn extend<T: IntoIterator<Item = Layer>>(&mut self, iter: T) {
        self.layers.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Model {
    type Item = &'a Layer;
    type IntoIter = std::slice::Iter<'a, Layer>;

    fn into_iter(self) -> Self::IntoIter {
        self.layers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerDims;
    use crate::op::Operator;

    fn two_layer() -> Model {
        let mut m = Model::new("m");
        m.push(Layer::new(
            "a",
            Operator::conv2d(),
            LayerDims::square(1, 4, 3, 8, 3),
        ));
        m.push(Layer::new(
            "b",
            Operator::conv2d(),
            LayerDims::square(1, 8, 4, 6, 3),
        ));
        m
    }

    #[test]
    fn lookup_and_totals() {
        let m = two_layer();
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(m.layer("a").is_some());
        assert!(m.layer("zz").is_none());
        assert_eq!(
            m.total_macs(),
            m.layers()[0].total_macs() + m.layers()[1].total_macs()
        );
    }

    #[test]
    fn validate_reports_layer_name() {
        let mut m = two_layer();
        m.push(Layer::new(
            "bad",
            Operator::conv2d(),
            LayerDims::square(1, 0, 3, 8, 3),
        ));
        let (name, _) = m.validate().unwrap_err();
        assert_eq!(name, "bad");
    }

    #[test]
    fn display_and_iter() {
        let m = two_layer();
        assert!(m.to_string().contains("2 layers"));
        assert_eq!((&m).into_iter().count(), 2);
    }
}

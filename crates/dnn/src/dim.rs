//! The seven canonical tensor dimensions of the data-centric notation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A tensor dimension in the input-centric convolution loop nest.
///
/// The paper (Figure 1) addresses the three tensors of a convolutional layer
/// through seven dimensions. `Y` and `X` are *input* row/column; the output
/// row/column (`Y'`/`X'`) are derived as `y' = (y - r) / stride`.
///
/// ```
/// use maestro_dnn::Dim;
/// assert_eq!(Dim::K.to_string(), "K");
/// assert_eq!("Y".parse::<Dim>().unwrap(), Dim::Y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// Input batch.
    N,
    /// Output channel (filter index).
    K,
    /// Input channel.
    C,
    /// Input row.
    Y,
    /// Input column.
    X,
    /// Filter row.
    R,
    /// Filter column.
    S,
}

/// All seven dimensions in canonical order (`N, K, C, Y, X, R, S`).
pub const ALL_DIMS: [Dim; 7] = [Dim::N, Dim::K, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S];

impl Dim {
    /// Index of this dimension within [`ALL_DIMS`].
    ///
    /// ```
    /// use maestro_dnn::Dim;
    /// assert_eq!(Dim::N.index(), 0);
    /// assert_eq!(Dim::S.index(), 6);
    /// ```
    pub const fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::K => 1,
            Dim::C => 2,
            Dim::Y => 3,
            Dim::X => 4,
            Dim::R => 5,
            Dim::S => 6,
        }
    }

    /// The sliding-window partner of this dimension, if any.
    ///
    /// `Y` pairs with `R` (rows) and `X` pairs with `S` (columns): a window
    /// of `R` input rows starting at `y` produces output row `y' = y` (for
    /// stride 1). All other dimensions have no partner.
    ///
    /// ```
    /// use maestro_dnn::Dim;
    /// assert_eq!(Dim::Y.window_partner(), Some(Dim::R));
    /// assert_eq!(Dim::R.window_partner(), Some(Dim::Y));
    /// assert_eq!(Dim::K.window_partner(), None);
    /// ```
    pub const fn window_partner(self) -> Option<Dim> {
        match self {
            Dim::Y => Some(Dim::R),
            Dim::R => Some(Dim::Y),
            Dim::X => Some(Dim::S),
            Dim::S => Some(Dim::X),
            _ => None,
        }
    }

    /// `true` for the spatial input dimensions `Y` and `X`.
    pub const fn is_input_spatial(self) -> bool {
        matches!(self, Dim::Y | Dim::X)
    }

    /// `true` for the filter window dimensions `R` and `S`.
    pub const fn is_filter_window(self) -> bool {
        matches!(self, Dim::R | Dim::S)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::N => "N",
            Dim::K => "K",
            Dim::C => "C",
            Dim::Y => "Y",
            Dim::X => "X",
            Dim::R => "R",
            Dim::S => "S",
        };
        f.write_str(s)
    }
}

/// Error returned when parsing a [`Dim`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimError(pub String);

impl fmt::Display for ParseDimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown dimension name `{}`", self.0)
    }
}

impl std::error::Error for ParseDimError {}

impl FromStr for Dim {
    type Err = ParseDimError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "N" | "n" => Ok(Dim::N),
            "K" | "k" => Ok(Dim::K),
            "C" | "c" => Ok(Dim::C),
            // The output-centric names are accepted as aliases for the
            // input-centric dimensions they correspond to.
            "Y" | "y" | "Y'" | "y'" => Ok(Dim::Y),
            "X" | "x" | "X'" | "x'" => Ok(Dim::X),
            "R" | "r" => Ok(Dim::R),
            "S" | "s" => Ok(Dim::S),
            other => Err(ParseDimError(other.to_string())),
        }
    }
}

/// A total size for each of the seven dimensions.
///
/// This is a small fixed-size map keyed by [`Dim`]; it is `Copy` and cheap to
/// pass around, which matters because the analysis engines construct one per
/// cluster level per layer.
///
/// ```
/// use maestro_dnn::{Dim, DimSizes};
/// let mut d = DimSizes::ones();
/// d.set(Dim::K, 64);
/// assert_eq!(d.get(Dim::K), 64);
/// assert_eq!(d.get(Dim::N), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimSizes {
    sizes: [u64; 7],
}

impl DimSizes {
    /// All dimensions set to 1.
    pub const fn ones() -> Self {
        DimSizes { sizes: [1; 7] }
    }

    /// Build from explicit per-dimension sizes in canonical order.
    pub const fn new(n: u64, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64) -> Self {
        DimSizes {
            sizes: [n, k, c, y, x, r, s],
        }
    }

    /// Size of dimension `d`.
    pub const fn get(&self, d: Dim) -> u64 {
        self.sizes[d.index()]
    }

    /// Set dimension `d` to `size`.
    pub fn set(&mut self, d: Dim, size: u64) {
        self.sizes[d.index()] = size;
    }

    /// Returns a copy with dimension `d` set to `size`.
    #[must_use]
    pub fn with(mut self, d: Dim, size: u64) -> Self {
        self.set(d, size);
        self
    }

    /// Iterate over `(Dim, size)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, u64)> + '_ {
        ALL_DIMS.iter().map(move |&d| (d, self.get(d)))
    }

    /// Product of all seven sizes.
    pub fn product(&self) -> u64 {
        self.sizes.iter().product()
    }
}

impl Default for DimSizes {
    fn default() -> Self {
        Self::ones()
    }
}

impl fmt::Display for DimSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, s) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{d}:{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_roundtrip_display_parse() {
        for d in ALL_DIMS {
            let s = d.to_string();
            assert_eq!(s.parse::<Dim>().unwrap(), d);
        }
    }

    #[test]
    fn dim_parse_aliases_and_errors() {
        assert_eq!("Y'".parse::<Dim>().unwrap(), Dim::Y);
        assert_eq!("x'".parse::<Dim>().unwrap(), Dim::X);
        assert!("Q".parse::<Dim>().is_err());
        let err = "Z".parse::<Dim>().unwrap_err();
        assert!(err.to_string().contains('Z'));
    }

    #[test]
    fn window_partners_are_symmetric() {
        for d in ALL_DIMS {
            if let Some(p) = d.window_partner() {
                assert_eq!(p.window_partner(), Some(d));
            }
        }
    }

    #[test]
    fn dim_sizes_set_get_product() {
        let d = DimSizes::new(2, 4, 6, 8, 8, 3, 3);
        assert_eq!(d.get(Dim::C), 6);
        assert_eq!(d.product(), 2 * 4 * 6 * 8 * 8 * 3 * 3);
        let d2 = d.with(Dim::C, 1);
        assert_eq!(d2.get(Dim::C), 1);
        assert_eq!(d.get(Dim::C), 6, "with() must not mutate the original");
    }

    #[test]
    fn dim_sizes_display_lists_all() {
        let d = DimSizes::ones();
        let s = d.to_string();
        for dim in ALL_DIMS {
            assert!(s.contains(&format!("{dim}:1")));
        }
    }

    #[test]
    fn indices_are_canonical_order() {
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }
}

//! Layer descriptions: dimension sizes, strides, sparsity, derived counts.

use crate::coupling::{Coupling, TensorKind};
use crate::dim::{Dim, DimSizes};
use crate::op::{Operator, OperatorClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven dimension sizes of a layer plus its spatial strides.
///
/// `y`/`x` are *input* extents; output extents are derived with the
/// standard valid-convolution rule `y' = (y - r) / stride + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerDims {
    /// Batch size.
    pub n: u64,
    /// Output channels (total, across all groups).
    pub k: u64,
    /// Input channels (per group, for grouped convolution).
    pub c: u64,
    /// Input rows.
    pub y: u64,
    /// Input columns.
    pub x: u64,
    /// Filter rows.
    pub r: u64,
    /// Filter columns.
    pub s: u64,
    /// Vertical stride.
    pub stride_y: u64,
    /// Horizontal stride.
    pub stride_x: u64,
}

impl LayerDims {
    /// Square-image, square-kernel, unit-stride constructor.
    pub const fn square(n: u64, k: u64, c: u64, yx: u64, rs: u64) -> Self {
        LayerDims {
            n,
            k,
            c,
            y: yx,
            x: yx,
            r: rs,
            s: rs,
            stride_y: 1,
            stride_x: 1,
        }
    }

    /// Returns a copy with both strides set.
    #[must_use]
    pub const fn with_stride(mut self, stride: u64) -> Self {
        self.stride_y = stride;
        self.stride_x = stride;
        self
    }

    /// Output rows: `(y - r) / stride_y + 1`.
    pub const fn out_y(&self) -> u64 {
        out_extent(self.y, self.r, self.stride_y)
    }

    /// Output columns: `(x - s) / stride_x + 1`.
    pub const fn out_x(&self) -> u64 {
        out_extent(self.x, self.s, self.stride_x)
    }

    /// The seven sizes as a [`DimSizes`] (input-centric; strides dropped).
    pub const fn sizes(&self) -> DimSizes {
        DimSizes::new(self.n, self.k, self.c, self.y, self.x, self.r, self.s)
    }

    /// Stride along dimension `d` (1 for non-spatial dims).
    pub const fn stride(&self, d: Dim) -> u64 {
        match d {
            Dim::Y => self.stride_y,
            Dim::X => self.stride_x,
            _ => 1,
        }
    }
}

/// Output extent of a sliding window: `(input - window) / stride + 1`.
///
/// Saturates at zero when the window does not fit.
pub const fn out_extent(input: u64, window: u64, stride: u64) -> u64 {
    if input < window || stride == 0 {
        0
    } else {
        (input - window) / stride + 1
    }
}

/// Uniform density (1 − sparsity) of each tensor, in `[0, 1]`.
///
/// MAESTRO models uniformly distributed sparsity (paper §4.4): the MAC
/// count and per-tensor traffic are scaled by the relevant densities.
/// Transposed convolutions use this to account for the structured zeros
/// introduced by upsampling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Density {
    /// Fraction of non-zero input activations.
    pub input: f64,
    /// Fraction of non-zero weights.
    pub weight: f64,
    /// Fraction of output elements actually produced.
    pub output: f64,
}

impl Density {
    /// Fully dense tensors.
    pub const fn dense() -> Self {
        Density {
            input: 1.0,
            weight: 1.0,
            output: 1.0,
        }
    }

    /// Density for the tensor of the given kind.
    pub const fn of(&self, kind: TensorKind) -> f64 {
        match kind {
            TensorKind::Input => self.input,
            TensorKind::Weight => self.weight,
            TensorKind::Output => self.output,
        }
    }

    /// Fraction of MACs that touch non-zero operands (input × weight
    /// density under the uniform-distribution assumption).
    pub const fn mac_fraction(&self) -> f64 {
        self.input * self.weight
    }

    /// `true` when every component lies in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        let ok = |v: f64| (0.0..=1.0).contains(&v);
        ok(self.input) && ok(self.weight) && ok(self.output)
    }
}

impl Default for Density {
    fn default() -> Self {
        Self::dense()
    }
}

/// Error produced when a layer description is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerError {
    /// A dimension size is zero.
    ZeroDim(Dim),
    /// The filter window is larger than the input (`r > y` or `s > x`).
    WindowTooLarge {
        /// Window dimension (R or S).
        window: Dim,
        /// Window size.
        size: u64,
        /// Input extent it must fit into.
        input: u64,
    },
    /// A stride is zero.
    ZeroStride(Dim),
    /// A density value is outside `[0, 1]`.
    InvalidDensity,
    /// Grouped convolution with zero groups or `k` not divisible by groups.
    InvalidGroups {
        /// Number of groups requested.
        groups: u32,
        /// Output-channel count that must be divisible by `groups`.
        k: u64,
    },
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerError::ZeroDim(d) => write!(f, "dimension {d} has size zero"),
            LayerError::WindowTooLarge {
                window,
                size,
                input,
            } => write!(
                f,
                "filter window {window}={size} does not fit in input extent {input}"
            ),
            LayerError::ZeroStride(d) => write!(f, "stride along {d} is zero"),
            LayerError::InvalidDensity => write!(f, "density values must lie in [0, 1]"),
            LayerError::InvalidGroups { groups, k } => {
                write!(f, "invalid group count {groups} for K={k}")
            }
        }
    }
}

impl std::error::Error for LayerError {}

/// One layer of a DNN model: an operator, its dimension sizes, and the
/// tensor densities.
///
/// ```
/// use maestro_dnn::{Layer, LayerDims, Operator};
///
/// let l = Layer::new("conv", Operator::conv2d(), LayerDims::square(1, 64, 3, 224, 3));
/// assert_eq!(l.out_dims().0, 222);
/// assert_eq!(l.total_macs(), 64 * 3 * 222 * 222 * 9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name, unique within a model.
    pub name: String,
    /// Operator type.
    pub op: Operator,
    /// Dimension sizes and strides.
    pub dims: LayerDims,
    /// Uniform tensor densities.
    pub density: Density,
    /// Optional custom dimension coupling, overriding the operator's
    /// (paper §4.1: "MAESTRO allows users to specify tensors with
    /// arbitrary dimension coupling ... which provides generality").
    pub coupling_override: Option<Coupling>,
}

impl Layer {
    /// Create a fully dense layer.
    pub fn new(name: impl Into<String>, op: Operator, dims: LayerDims) -> Self {
        Layer {
            name: name.into(),
            op,
            dims,
            density: Density::dense(),
            coupling_override: None,
        }
    }

    /// Returns a copy computing under a custom dimension coupling instead
    /// of the operator's default (the Tensor Analysis engine consumes the
    /// coupling, so every downstream estimate follows it).
    #[must_use]
    pub fn with_coupling(mut self, coupling: Coupling) -> Self {
        self.coupling_override = Some(coupling);
        self
    }

    /// Returns a copy with the given densities.
    #[must_use]
    pub fn with_density(mut self, density: Density) -> Self {
        self.density = density;
        self
    }

    /// Validate the layer description.
    ///
    /// # Errors
    ///
    /// Returns a [`LayerError`] when any dimension or stride is zero, the
    /// filter window does not fit the input, a density is out of range, or
    /// the group count is inconsistent.
    pub fn validate(&self) -> Result<(), LayerError> {
        let d = &self.dims;
        for (dim, size) in d.sizes().iter() {
            if size == 0 {
                return Err(LayerError::ZeroDim(dim));
            }
        }
        if d.r > d.y {
            return Err(LayerError::WindowTooLarge {
                window: Dim::R,
                size: d.r,
                input: d.y,
            });
        }
        if d.s > d.x {
            return Err(LayerError::WindowTooLarge {
                window: Dim::S,
                size: d.s,
                input: d.x,
            });
        }
        if d.stride_y == 0 {
            return Err(LayerError::ZeroStride(Dim::Y));
        }
        if d.stride_x == 0 {
            return Err(LayerError::ZeroStride(Dim::X));
        }
        if !self.density.is_valid() {
            return Err(LayerError::InvalidDensity);
        }
        if let Operator::Conv2d { groups } = self.op {
            if groups == 0 || !self.dims.k.is_multiple_of(u64::from(groups)) {
                return Err(LayerError::InvalidGroups {
                    groups,
                    k: self.dims.k,
                });
            }
        }
        Ok(())
    }

    /// The layer's dimension coupling: the custom override when present,
    /// the operator's default otherwise.
    pub fn coupling(&self) -> Coupling {
        self.coupling_override.unwrap_or_else(|| self.op.coupling())
    }

    /// Output spatial extents `(y', x')`.
    pub fn out_dims(&self) -> (u64, u64) {
        (self.dims.out_y(), self.dims.out_x())
    }

    /// Number of elements of a tensor, honoring the operator's coupling.
    ///
    /// For grouped convolution the input tensor spans all `groups × C`
    /// channels while the per-filter weight spans only `C`.
    pub fn tensor_elements(&self, kind: TensorKind) -> u64 {
        let d = &self.dims;
        let coupling = self.coupling();
        let set = coupling.coupled(kind);
        let groups = match self.op {
            Operator::Conv2d { groups } => u64::from(groups),
            _ => 1,
        };
        let mut count = 1u64;
        for dim in set.iter() {
            let size = match (kind, dim) {
                // Output spatial extents are derived from the window pairs;
                // count the pair once (on the Y/X half).
                (TensorKind::Output, Dim::Y) => d.out_y(),
                (TensorKind::Output, Dim::X) => d.out_x(),
                (TensorKind::Output, Dim::R) | (TensorKind::Output, Dim::S) => 1,
                (_, dim) => d.sizes().get(dim),
            };
            count *= size;
        }
        if kind == TensorKind::Input {
            count *= groups;
        }
        count
    }

    /// Total multiply-accumulate (or element-op) count of the dense layer.
    pub fn total_macs(&self) -> u64 {
        let d = &self.dims;
        let coupling = self.coupling();
        let mut macs = d.n;
        if coupling.input.contains(Dim::Y) || coupling.output.contains(Dim::Y) {
            macs *= d.out_y() * d.out_x();
        }
        if coupling.is_coupled(TensorKind::Weight, Dim::K)
            || coupling.is_coupled(TensorKind::Output, Dim::K)
        {
            macs *= d.k;
        }
        if coupling.is_coupled(TensorKind::Input, Dim::C) {
            macs *= d.c;
        }
        if coupling.weight.contains(Dim::R) || coupling.output.contains(Dim::R) {
            macs *= d.r * d.s;
        }
        macs
    }

    /// Total MACs scaled by operand densities (effective work with
    /// uniformly distributed sparsity).
    pub fn effective_macs(&self) -> f64 {
        self.total_macs() as f64 * self.density.mac_fraction()
    }

    /// Classify this layer into paper Table 4's operator classes.
    pub fn classify(&self) -> OperatorClass {
        match self.op {
            Operator::Conv2d { groups } if groups > 1 => OperatorClass::AggregatedResidual,
            Operator::Conv2d { .. } => {
                if self.dims.r == 1 && self.dims.s == 1 {
                    OperatorClass::Pointwise
                } else if self.dims.c > self.dims.y {
                    // Paper footnote 2: "If C > Y, late layer. Else, early".
                    OperatorClass::LateConv
                } else {
                    OperatorClass::EarlyConv
                }
            }
            Operator::DepthwiseConv2d => OperatorClass::Depthwise,
            Operator::TransposedConv2d { .. } => OperatorClass::Transposed,
            Operator::FullyConnected => OperatorClass::FullyConnected,
            Operator::Pooling => OperatorClass::Pooling,
            Operator::ElementwiseAdd => OperatorClass::Residual,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.dims;
        write!(
            f,
            "{} [{}] N{} K{} C{} Y{} X{} R{} S{} s{}x{}",
            self.name, self.op, d.n, d.k, d.c, d.y, d.x, d.r, d.s, d.stride_y, d.stride_x
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Layer {
        // The Figure 1 example layer: N2 K4 C6 Y8 X8 R3 S3.
        Layer::new("fig1", Operator::conv2d(), LayerDims::square(2, 4, 6, 8, 3))
    }

    #[test]
    fn out_extent_rules() {
        assert_eq!(out_extent(8, 3, 1), 6);
        assert_eq!(out_extent(224, 3, 1), 222);
        assert_eq!(out_extent(227, 11, 4), 55);
        assert_eq!(out_extent(2, 3, 1), 0, "window larger than input");
        assert_eq!(out_extent(8, 3, 0), 0, "zero stride saturates");
    }

    #[test]
    fn figure1_example_counts() {
        let l = toy();
        assert_eq!(l.out_dims(), (6, 6));
        assert_eq!(l.total_macs(), 2 * 4 * 6 * 6 * 6 * 3 * 3);
        assert_eq!(l.tensor_elements(TensorKind::Input), 2 * 6 * 8 * 8);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 4 * 6 * 3 * 3);
        assert_eq!(l.tensor_elements(TensorKind::Output), 2 * 4 * 6 * 6);
        l.validate().unwrap();
    }

    #[test]
    fn depthwise_counts() {
        let l = Layer::new(
            "dw",
            Operator::DepthwiseConv2d,
            LayerDims::square(1, 1, 32, 16, 3),
        );
        assert_eq!(l.total_macs(), 32 * 14 * 14 * 9);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 32 * 9);
        assert_eq!(l.tensor_elements(TensorKind::Output), 32 * 14 * 14);
    }

    #[test]
    fn fully_connected_counts() {
        let mut dims = LayerDims::square(4, 1000, 4096, 1, 1);
        dims.r = 1;
        dims.s = 1;
        let l = Layer::new("fc", Operator::FullyConnected, dims);
        assert_eq!(l.total_macs(), 4 * 1000 * 4096);
        assert_eq!(l.tensor_elements(TensorKind::Weight), 1000 * 4096);
        assert_eq!(l.tensor_elements(TensorKind::Input), 4 * 4096);
    }

    #[test]
    fn grouped_conv_counts() {
        // ResNeXt-style: K=128 total filters, 32 groups, 4 channels/group.
        let l = Layer::new(
            "agg",
            Operator::Conv2d { groups: 32 },
            LayerDims::square(1, 128, 4, 56, 3),
        );
        assert_eq!(l.total_macs(), 128 * 4 * 54 * 54 * 9);
        // Input spans all 32*4 = 128 channels.
        assert_eq!(l.tensor_elements(TensorKind::Input), 128 * 56 * 56);
        l.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_layers() {
        let mut l = toy();
        l.dims.c = 0;
        assert_eq!(l.validate(), Err(LayerError::ZeroDim(Dim::C)));

        let mut l = toy();
        l.dims.r = 10;
        assert!(matches!(
            l.validate(),
            Err(LayerError::WindowTooLarge { window: Dim::R, .. })
        ));

        let mut l = toy();
        l.dims.stride_x = 0;
        assert_eq!(l.validate(), Err(LayerError::ZeroStride(Dim::X)));

        let mut l = toy();
        l.density.weight = 1.5;
        assert_eq!(l.validate(), Err(LayerError::InvalidDensity));

        let mut l = toy();
        l.op = Operator::Conv2d { groups: 3 };
        assert!(matches!(
            l.validate(),
            Err(LayerError::InvalidGroups { .. })
        ));
    }

    #[test]
    fn density_scales_macs() {
        let l = toy().with_density(Density {
            input: 0.5,
            weight: 0.5,
            output: 1.0,
        });
        let dense = l.total_macs() as f64;
        assert!((l.effective_macs() - dense * 0.25).abs() < 1e-9);
    }

    #[test]
    fn classification_rules() {
        // Early: C (3) <= Y (224).
        let early = Layer::new("e", Operator::conv2d(), LayerDims::square(1, 64, 3, 224, 3));
        assert_eq!(early.classify(), OperatorClass::EarlyConv);
        // Late: C (512) > Y (14).
        let late = Layer::new(
            "l",
            Operator::conv2d(),
            LayerDims::square(1, 512, 512, 14, 3),
        );
        assert_eq!(late.classify(), OperatorClass::LateConv);
        // Pointwise: 1x1 kernel.
        let pw = Layer::new("p", Operator::conv2d(), LayerDims::square(1, 64, 16, 56, 1));
        assert_eq!(pw.classify(), OperatorClass::Pointwise);
        let g = Layer::new(
            "g",
            Operator::Conv2d { groups: 32 },
            LayerDims::square(1, 128, 4, 56, 3),
        );
        assert_eq!(g.classify(), OperatorClass::AggregatedResidual);
    }

    #[test]
    fn display_contains_shape() {
        let s = toy().to_string();
        assert!(s.contains("K4"));
        assert!(s.contains("CONV2D"));
    }
}

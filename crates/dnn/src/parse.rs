//! Text format for network descriptions.
//!
//! The released MAESTRO tool is driven by description files that list a
//! network's layers with their dimensions; this module provides the same
//! workflow. Grammar (whitespace-insensitive, `//` line comments):
//!
//! ```text
//! network  := "Network" IDENT "{" layer* "}"
//! layer    := "Layer" IDENT "{" field* "}"
//! field    := "Type" ":" TYPE ";"
//!           | "Stride" ":" INT ";" | "StrideY" ":" INT ";" | "StrideX" ":" INT ";"
//!           | "Groups" ":" INT ";"
//!           | "Upsample" ":" INT ";"
//!           | "Dimensions" "{" (DIM ":" INT)* "}"
//!           | "Density" "{" (TENSOR ":" FLOAT)* "}"
//! TYPE     := "CONV" | "DWCONV" | "TRCONV" | "FC" | "GEMM" | "POOL" | "ADD"
//! TENSOR   := "Input" | "Weight" | "Output"
//! ```
//!
//! [`write_network`] emits the same format; the two round-trip.

use crate::dim::Dim;
use crate::layer::{Density, Layer, LayerDims};
use crate::model::Model;
use crate::op::Operator;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetworkError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseNetworkError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_trivia(&mut self) {
        let b = self.src.as_bytes();
        loop {
            while self.pos < b.len() && b[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with("//") {
                while self.pos < b.len() && b[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseNetworkError {
        ParseNetworkError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_trivia();
        self.src.as_bytes().get(self.pos).copied()
    }

    fn expect_char(&mut self, c: u8) -> Result<(), ParseNetworkError> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(self.err(format!(
                "expected `{}`, found {:?}",
                c as char,
                got.map(|g| g as char)
            ))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseNetworkError> {
        self.skip_trivia();
        let b = self.src.as_bytes();
        let start = self.pos;
        while self.pos < b.len()
            && (b[self.pos].is_ascii_alphanumeric()
                || b[self.pos] == b'_'
                || b[self.pos] == b'-'
                || b[self.pos] == b'\'')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<f64, ParseNetworkError> {
        self.skip_trivia();
        let b = self.src.as_bytes();
        let start = self.pos;
        while self.pos < b.len() && (b[self.pos].is_ascii_digit() || b[self.pos] == b'.') {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected a number"))
    }

    fn opt_semi(&mut self) {
        if self.peek() == Some(b';') {
            self.pos += 1;
        }
    }
}

fn operator_of(name: &str, groups: u32, upsample: u32) -> Option<Operator> {
    Some(match name {
        "CONV" | "CONV2D" => Operator::Conv2d { groups },
        "DWCONV" => Operator::DepthwiseConv2d,
        "TRCONV" => Operator::TransposedConv2d { upsample },
        "FC" | "GEMM" => Operator::FullyConnected,
        "POOL" => Operator::Pooling,
        "ADD" => Operator::ElementwiseAdd,
        _ => return None,
    })
}

fn operator_name(op: &Operator) -> &'static str {
    match op {
        Operator::Conv2d { .. } => "CONV",
        Operator::DepthwiseConv2d => "DWCONV",
        Operator::TransposedConv2d { .. } => "TRCONV",
        Operator::FullyConnected => "FC",
        Operator::Pooling => "POOL",
        Operator::ElementwiseAdd => "ADD",
    }
}

/// Parse a network description.
///
/// # Errors
///
/// Returns a [`ParseNetworkError`] on malformed input or invalid layers.
///
/// ```
/// use maestro_dnn::parse::parse_network;
/// let m = parse_network(
///     "Network tiny { Layer C1 { Type: CONV; Dimensions { N:1 K:8 C:3 Y:18 X:18 R:3 S:3 } } }",
/// ).unwrap();
/// assert_eq!(m.name, "tiny");
/// assert_eq!(m.layer("C1").unwrap().dims.k, 8);
/// ```
pub fn parse_network(src: &str) -> Result<Model, ParseNetworkError> {
    let mut c = Cursor { src, pos: 0 };
    let kw = c.ident()?;
    if kw != "Network" {
        return Err(c.err(format!("expected `Network`, found `{kw}`")));
    }
    let name = c.ident()?;
    c.expect_char(b'{')?;
    let mut model = Model::new(name);
    loop {
        match c.peek() {
            Some(b'}') => {
                c.pos += 1;
                break;
            }
            Some(_) => {
                let kw = c.ident()?;
                if kw != "Layer" {
                    return Err(c.err(format!("expected `Layer` or `}}`, found `{kw}`")));
                }
                model.push(parse_layer(&mut c)?);
            }
            None => return Err(c.err("unexpected end of input in network body")),
        }
    }
    c.skip_trivia();
    if c.pos != src.len() {
        return Err(c.err("trailing input after network body"));
    }
    model.validate().map_err(|(lname, e)| ParseNetworkError {
        offset: src.len(),
        message: format!("layer {lname}: {e}"),
    })?;
    Ok(model)
}

fn parse_layer(c: &mut Cursor<'_>) -> Result<Layer, ParseNetworkError> {
    let name = c.ident()?;
    c.expect_char(b'{')?;
    let mut ty = "CONV".to_string();
    let mut groups = 1u32;
    let mut upsample = 2u32;
    let mut dims = LayerDims {
        n: 1,
        k: 1,
        c: 1,
        y: 1,
        x: 1,
        r: 1,
        s: 1,
        stride_y: 1,
        stride_x: 1,
    };
    let mut density = Density::dense();
    loop {
        match c.peek() {
            Some(b'}') => {
                c.pos += 1;
                break;
            }
            Some(_) => {
                let field = c.ident()?;
                match field.as_str() {
                    "Type" => {
                        c.expect_char(b':')?;
                        ty = c.ident()?;
                        c.opt_semi();
                    }
                    "Stride" => {
                        c.expect_char(b':')?;
                        let v = c.number()? as u64;
                        dims.stride_y = v;
                        dims.stride_x = v;
                        c.opt_semi();
                    }
                    "StrideY" => {
                        c.expect_char(b':')?;
                        dims.stride_y = c.number()? as u64;
                        c.opt_semi();
                    }
                    "StrideX" => {
                        c.expect_char(b':')?;
                        dims.stride_x = c.number()? as u64;
                        c.opt_semi();
                    }
                    "Groups" => {
                        c.expect_char(b':')?;
                        groups = c.number()? as u32;
                        c.opt_semi();
                    }
                    "Upsample" => {
                        c.expect_char(b':')?;
                        upsample = c.number()? as u32;
                        c.opt_semi();
                    }
                    "Dimensions" => {
                        c.expect_char(b'{')?;
                        while c.peek() != Some(b'}') {
                            let d = c.ident()?;
                            let dim: Dim = d
                                .parse()
                                .map_err(|_| c.err(format!("`{d}` is not a dimension name")))?;
                            c.expect_char(b':')?;
                            let v = c.number()? as u64;
                            match dim {
                                Dim::N => dims.n = v,
                                Dim::K => dims.k = v,
                                Dim::C => dims.c = v,
                                Dim::Y => dims.y = v,
                                Dim::X => dims.x = v,
                                Dim::R => dims.r = v,
                                Dim::S => dims.s = v,
                            }
                        }
                        c.pos += 1; // consume '}'
                    }
                    "Density" => {
                        c.expect_char(b'{')?;
                        while c.peek() != Some(b'}') {
                            let t = c.ident()?;
                            c.expect_char(b':')?;
                            let v = c.number()?;
                            match t.as_str() {
                                "Input" => density.input = v,
                                "Weight" => density.weight = v,
                                "Output" => density.output = v,
                                other => {
                                    return Err(c.err(format!("`{other}` is not a tensor name")))
                                }
                            }
                        }
                        c.pos += 1;
                    }
                    other => return Err(c.err(format!("unknown layer field `{other}`"))),
                }
            }
            None => return Err(c.err("unexpected end of input in layer body")),
        }
    }
    let op = operator_of(&ty, groups, upsample)
        .ok_or_else(|| c.err(format!("unknown layer type `{ty}`")))?;
    Ok(Layer::new(name, op, dims).with_density(density))
}

/// Write a model in the network description format (round-trips with
/// [`parse_network`]).
pub fn write_network(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Network {} {{", model.name);
    for l in model.iter() {
        let _ = writeln!(out, "  Layer {} {{", l.name);
        let _ = writeln!(out, "    Type: {};", operator_name(&l.op));
        if let Operator::Conv2d { groups } = l.op {
            if groups > 1 {
                let _ = writeln!(out, "    Groups: {groups};");
            }
        }
        if let Operator::TransposedConv2d { upsample } = l.op {
            let _ = writeln!(out, "    Upsample: {upsample};");
        }
        if l.dims.stride_y == l.dims.stride_x {
            if l.dims.stride_y != 1 {
                let _ = writeln!(out, "    Stride: {};", l.dims.stride_y);
            }
        } else {
            let _ = writeln!(out, "    StrideY: {};", l.dims.stride_y);
            let _ = writeln!(out, "    StrideX: {};", l.dims.stride_x);
        }
        let d = &l.dims;
        let _ = writeln!(
            out,
            "    Dimensions {{ N:{} K:{} C:{} Y:{} X:{} R:{} S:{} }}",
            d.n, d.k, d.c, d.y, d.x, d.r, d.s
        );
        if l.density != Density::dense() {
            let _ = writeln!(
                out,
                "    Density {{ Input:{} Weight:{} Output:{} }}",
                l.density.input, l.density.weight, l.density.output
            );
        }
        let _ = writeln!(out, "  }}");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn parse_minimal() {
        let m = parse_network("Network n { Layer a { Dimensions { K:4 C:3 Y:8 X:8 R:3 S:3 } } }")
            .unwrap();
        assert_eq!(m.len(), 1);
        let l = m.layer("a").unwrap();
        assert_eq!(l.op, Operator::conv2d());
        assert_eq!(l.dims.n, 1, "N defaults to 1");
    }

    #[test]
    fn parse_all_fields() {
        let m = parse_network(
            "Network n {
               // grouped strided conv
               Layer g { Type: CONV; Groups: 2; Stride: 2;
                         Dimensions { K:8 C:4 Y:9 X:9 R:3 S:3 } }
               Layer t { Type: TRCONV; Upsample: 2;
                         Dimensions { K:4 C:8 Y:9 X:9 R:2 S:2 }
                         Density { Input: 0.25 } }
               Layer f { Type: FC; Dimensions { N:4 K:10 C:20 } }
               Layer p { Type: POOL; Dimensions { C:8 Y:8 X:8 R:2 S:2 } }
               Layer e { Type: ADD; Dimensions { K:8 Y:8 X:8 } }
             }",
        )
        .unwrap();
        assert_eq!(m.len(), 5);
        assert_eq!(m.layer("g").unwrap().op, Operator::Conv2d { groups: 2 });
        assert_eq!(m.layer("g").unwrap().dims.stride_y, 2);
        assert!((m.layer("t").unwrap().density.input - 0.25).abs() < 1e-12);
        assert_eq!(m.layer("f").unwrap().op, Operator::FullyConnected);
        assert_eq!(m.layer("p").unwrap().op, Operator::Pooling);
        assert_eq!(m.layer("e").unwrap().op, Operator::ElementwiseAdd);
    }

    #[test]
    fn roundtrip_zoo_models() {
        for m in [zoo::vgg16(1), zoo::mobilenet_v2(1), zoo::dcgan(1)] {
            let text = write_network(&m);
            let back = parse_network(&text).unwrap_or_else(|e| panic!("{}: {e}", m.name));
            assert_eq!(m, back, "{}", m.name);
        }
    }

    #[test]
    fn invalid_layers_are_rejected_at_parse_time() {
        let err = parse_network("Network n { Layer a { Dimensions { K:4 C:3 Y:2 X:8 R:3 S:3 } } }")
            .unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
    }

    #[test]
    fn error_messages() {
        assert!(parse_network("Nutwork n {}")
            .unwrap_err()
            .message
            .contains("Network"));
        assert!(parse_network("Network n { Frob x {} }")
            .unwrap_err()
            .message
            .contains("Layer"));
        let err =
            parse_network("Network n { Layer a { Type: WAT; Dimensions { K:1 } } }").unwrap_err();
        assert!(err.message.contains("WAT"), "{err}");
        let err = parse_network("Network n { Layer a { Dimensions { Q:1 } } }").unwrap_err();
        assert!(err.message.contains("dimension"), "{err}");
    }
}

//! Model zoo: the networks used in the paper's evaluation (§5, Table 4,
//! Figures 9-13): VGG16, AlexNet, ResNet-50, ResNeXt-50 (32x4d),
//! MobileNetV2, UNet and the DCGAN generator.
//!
//! Layer extents follow the standard published architectures. Convolutions
//! that are zero-padded in the original network are described with their
//! padded input extent (`y = (y' - 1) * stride + r`), so the derived output
//! extents match the published feature-map sizes exactly. UNet uses valid
//! (unpadded) convolutions, as in the original paper.
//!
//! ```
//! use maestro_dnn::zoo;
//! let m = zoo::vgg16(1);
//! assert_eq!(m.layer("CONV1").unwrap().dims.c, 3);
//! assert_eq!(m.layer("CONV13").unwrap().out_dims(), (14, 14));
//! ```

#![allow(clippy::items_after_test_module)] // helpers + tests precede the model builders
use crate::layer::{Density, Layer, LayerDims};
use crate::model::Model;
use crate::op::{Operator, OperatorClass};

/// Build a padded convolution layer: `k` filters over `c` channels with an
/// `rs`×`rs` kernel and the given stride, producing an `out`×`out` map.
fn conv(name: &str, n: u64, k: u64, c: u64, out: u64, rs: u64, stride: u64) -> Layer {
    let y = (out - 1) * stride + rs;
    let dims = LayerDims {
        n,
        k,
        c,
        y,
        x: y,
        r: rs,
        s: rs,
        stride_y: stride,
        stride_x: stride,
    };
    Layer::new(name, Operator::conv2d(), dims)
}

/// Grouped (aggregated-residual) convolution; `c` is channels *per group*.
#[allow(clippy::too_many_arguments)]
fn gconv(name: &str, n: u64, k: u64, c: u64, groups: u32, out: u64, rs: u64, stride: u64) -> Layer {
    let mut l = conv(name, n, k, c, out, rs, stride);
    l.op = Operator::Conv2d { groups };
    l
}

/// Point-wise (1×1) convolution.
fn pw(name: &str, n: u64, k: u64, c: u64, out: u64) -> Layer {
    conv(name, n, k, c, out, 1, 1)
}

/// Depth-wise 3×3 convolution over `c` channels.
fn dw(name: &str, n: u64, c: u64, out: u64, stride: u64) -> Layer {
    let y = (out - 1) * stride + 3;
    let dims = LayerDims {
        n,
        k: 1,
        c,
        y,
        x: y,
        r: 3,
        s: 3,
        stride_y: stride,
        stride_x: stride,
    };
    Layer::new(name, Operator::DepthwiseConv2d, dims)
}

/// Fully-connected layer with `k` outputs and `c` inputs.
fn fc(name: &str, n: u64, k: u64, c: u64) -> Layer {
    let dims = LayerDims {
        n,
        k,
        c,
        y: 1,
        x: 1,
        r: 1,
        s: 1,
        stride_y: 1,
        stride_x: 1,
    };
    Layer::new(name, Operator::FullyConnected, dims)
}

/// Residual (skip-connection) element-wise addition over a `k`×`yx`×`yx` map.
fn residual(name: &str, n: u64, k: u64, yx: u64) -> Layer {
    let dims = LayerDims {
        n,
        k,
        c: 1,
        y: yx,
        x: yx,
        r: 1,
        s: 1,
        stride_y: 1,
        stride_x: 1,
    };
    Layer::new(name, Operator::ElementwiseAdd, dims)
}

/// Transposed convolution that upsamples an `inp`×`inp` map by 2× with an
/// `rs`×`rs` kernel. Modeled as a dense convolution over the zero-upsampled
/// input with the structured input sparsity captured as density (1/4).
fn tconv(name: &str, n: u64, k: u64, c: u64, inp: u64, rs: u64) -> Layer {
    let out = inp * 2;
    let y = out + rs - 1;
    let dims = LayerDims {
        n,
        k,
        c,
        y,
        x: y,
        r: rs,
        s: rs,
        stride_y: 1,
        stride_x: 1,
    };
    let mut l = Layer::new(name, Operator::TransposedConv2d { upsample: 2 }, dims);
    l.density = Density {
        input: 0.25,
        weight: 1.0,
        output: 1.0,
    };
    l
}

/// VGG16 (Simonyan & Zisserman): 13 convolutions `CONV1..CONV13` and three
/// fully-connected layers. `CONV2` (64×64×224×224) and `CONV11`
/// (512×512×14×14) are the early/late layers used throughout the paper.
pub fn vgg16(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("VGG16");
    m.extend([
        conv("CONV1", n, 64, 3, 224, 3, 1),
        conv("CONV2", n, 64, 64, 224, 3, 1),
        conv("CONV3", n, 128, 64, 112, 3, 1),
        conv("CONV4", n, 128, 128, 112, 3, 1),
        conv("CONV5", n, 256, 128, 56, 3, 1),
        conv("CONV6", n, 256, 256, 56, 3, 1),
        conv("CONV7", n, 256, 256, 56, 3, 1),
        conv("CONV8", n, 512, 256, 28, 3, 1),
        conv("CONV9", n, 512, 512, 28, 3, 1),
        conv("CONV10", n, 512, 512, 28, 3, 1),
        conv("CONV11", n, 512, 512, 14, 3, 1),
        conv("CONV12", n, 512, 512, 14, 3, 1),
        conv("CONV13", n, 512, 512, 14, 3, 1),
        fc("FC1", n, 4096, 25088),
        fc("FC2", n, 4096, 4096),
        fc("FC3", n, 1000, 4096),
    ]);
    m
}

/// AlexNet (Krizhevsky et al.): five convolutions, groups of two in
/// CONV2/4/5 as in the original two-GPU network, then three FC layers.
pub fn alexnet(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("AlexNet");
    // CONV1 is unpadded 227x227 input, 11x11 stride 4 -> 55x55.
    let c1 = Layer::new(
        "CONV1",
        Operator::conv2d(),
        LayerDims {
            n,
            k: 96,
            c: 3,
            y: 227,
            x: 227,
            r: 11,
            s: 11,
            stride_y: 4,
            stride_x: 4,
        },
    );
    debug_assert!(c1.validate().is_ok(), "alexnet conv1 dims are fixed");
    m.push(c1);
    m.extend([
        gconv("CONV2", n, 256, 48, 2, 27, 5, 1),
        conv("CONV3", n, 384, 256, 13, 3, 1),
        gconv("CONV4", n, 384, 192, 2, 13, 3, 1),
        gconv("CONV5", n, 256, 192, 2, 13, 3, 1),
        fc("FC1", n, 4096, 9216),
        fc("FC2", n, 4096, 4096),
        fc("FC3", n, 1000, 4096),
    ]);
    m
}

/// One ResNet bottleneck: 1×1 reduce, 3×3, 1×1 expand, plus the residual
/// add; the first block of a stage also has a projection shortcut.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    m: &mut Model,
    prefix: &str,
    n: u64,
    cin: u64,
    mid: u64,
    cout: u64,
    out: u64,
    stride: u64,
    groups: u32,
    project: bool,
) {
    m.push(pw(
        &format!("{prefix}_a"),
        n,
        mid,
        cin,
        out * stride / stride,
    ));
    if groups > 1 {
        m.push(gconv(
            &format!("{prefix}_b"),
            n,
            mid,
            mid / u64::from(groups),
            groups,
            out,
            3,
            stride,
        ));
    } else {
        m.push(conv(&format!("{prefix}_b"), n, mid, mid, out, 3, stride));
    }
    m.push(pw(&format!("{prefix}_c"), n, cout, mid, out));
    if project {
        let mut proj = pw(&format!("{prefix}_proj"), n, cout, cin, out);
        proj.dims.stride_y = stride;
        proj.dims.stride_x = stride;
        proj.dims.y = (out - 1) * stride + 1;
        proj.dims.x = proj.dims.y;
        m.push(proj);
    }
    m.push(residual(&format!("{prefix}_add"), n, cout, out));
}

/// Shared skeleton for ResNet-50 and ResNeXt-50 (32×4d).
fn resnet50_like(name: &str, batch: u64, groups: u32, mid_scale: u64) -> Model {
    let n = batch;
    let mut m = Model::new(name);
    m.push(conv("CONV1", n, 64, 3, 112, 7, 2));
    // (stage, blocks, mid, cout, out)
    let stages: [(u32, u64, u64, u64, u64); 4] = [
        (2, 3, 64 * mid_scale, 256, 56),
        (3, 4, 128 * mid_scale, 512, 28),
        (4, 6, 256 * mid_scale, 1024, 14),
        (5, 3, 512 * mid_scale, 2048, 7),
    ];
    let mut cin = 64;
    for (stage, blocks, mid, cout, out) in stages {
        for b in 0..blocks {
            let stride = if b == 0 && stage > 2 { 2 } else { 1 };
            bottleneck(
                &mut m,
                &format!("CONV{stage}_{}", b + 1),
                n,
                cin,
                mid,
                cout,
                out,
                stride,
                groups,
                b == 0,
            );
            cin = cout;
        }
    }
    m.push(fc("FC1000", n, 1000, 2048));
    m
}

/// ResNet-50 (He et al.): 16 bottleneck blocks over four stages.
pub fn resnet50(batch: u64) -> Model {
    resnet50_like("ResNet50", batch, 1, 1)
}

/// ResNeXt-50 32×4d (Xie et al.): the ResNet-50 skeleton with 32-group
/// aggregated-residual 3×3 convolutions of doubled width.
pub fn resnext50(batch: u64) -> Model {
    resnet50_like("ResNeXt50", batch, 32, 2)
}

/// MobileNetV2 (Sandler et al.): inverted-residual bottlenecks built from
/// point-wise expansion, depth-wise 3×3 and point-wise projection.
pub fn mobilenet_v2(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("MobileNetV2");
    m.push(conv("CONV1", n, 32, 3, 112, 3, 2));
    // (expansion t, output channels, repeats, first stride), input 112x112x32.
    let cfg: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut cin = 32;
    let mut size = 112;
    for (bi, (t, cout, reps, first_stride)) in cfg.iter().enumerate() {
        for r in 0..*reps {
            let stride = if r == 0 { *first_stride } else { 1 };
            let out = size / stride;
            let hidden = cin * t;
            let p = format!("BN{}_{}", bi + 1, r + 1);
            if *t != 1 {
                m.push(pw(&format!("{p}_expand"), n, hidden, cin, size));
            }
            m.push(dw(&format!("{p}_dw"), n, hidden, out, stride));
            m.push(pw(&format!("{p}_project"), n, *cout, hidden, out));
            if stride == 1 && cin == *cout {
                m.push(residual(&format!("{p}_add"), n, *cout, out));
            }
            cin = *cout;
            size = out;
        }
    }
    m.push(pw("CONV_LAST", n, 1280, 320, 7));
    m.push(fc("FC", n, 1000, 1280));
    m
}

/// UNet (Ronneberger et al.): the original valid-convolution segmentation
/// network with a 572×572 input, four down/up levels and 2×2 up-convolutions
/// (transposed convolutions).
pub fn unet(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("UNet");
    let vconv = |name: &str, k: u64, c: u64, y: u64| {
        Layer::new(
            name,
            Operator::conv2d(),
            LayerDims {
                n,
                k,
                c,
                y,
                x: y,
                r: 3,
                s: 3,
                stride_y: 1,
                stride_x: 1,
            },
        )
    };
    // Encoder.
    m.push(vconv("ENC1_1", 64, 1, 572));
    m.push(vconv("ENC1_2", 64, 64, 570));
    m.push(vconv("ENC2_1", 128, 64, 284));
    m.push(vconv("ENC2_2", 128, 128, 282));
    m.push(vconv("ENC3_1", 256, 128, 140));
    m.push(vconv("ENC3_2", 256, 256, 138));
    m.push(vconv("ENC4_1", 512, 256, 68));
    m.push(vconv("ENC4_2", 512, 512, 66));
    m.push(vconv("BOT_1", 1024, 512, 32));
    m.push(vconv("BOT_2", 1024, 1024, 30));
    // Decoder: 2x2 up-convolutions followed by two valid 3x3 convolutions
    // over the concatenated (2x channel) maps.
    m.push(tconv("UP1", n, 512, 1024, 28, 2));
    m.push(vconv("DEC1_1", 512, 1024, 56));
    m.push(vconv("DEC1_2", 512, 512, 54));
    m.push(tconv("UP2", n, 256, 512, 52, 2));
    m.push(vconv("DEC2_1", 256, 512, 104));
    m.push(vconv("DEC2_2", 256, 256, 102));
    m.push(tconv("UP3", n, 128, 256, 100, 2));
    m.push(vconv("DEC3_1", 128, 256, 200));
    m.push(vconv("DEC3_2", 128, 128, 198));
    m.push(tconv("UP4", n, 64, 128, 196, 2));
    m.push(vconv("DEC4_1", 64, 128, 392));
    m.push(vconv("DEC4_2", 64, 64, 390));
    m.push(pw("OUT", n, 2, 64, 388));
    m
}

/// The DCGAN generator (Radford et al.): a stack of 2×-upsampling
/// transposed convolutions from a 4×4×1024 seed to a 64×64 RGB image.
pub fn dcgan(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("DCGAN");
    m.push(fc("PROJECT", n, 1024 * 4 * 4, 100));
    m.push(tconv("TCONV1", n, 512, 1024, 4, 4));
    m.push(tconv("TCONV2", n, 256, 512, 8, 4));
    m.push(tconv("TCONV3", n, 128, 256, 16, 4));
    m.push(tconv("TCONV4", n, 3, 128, 32, 4));
    m
}

/// The five models used in Figure 10's dataflow case study.
/// Look a zoo model up by its CLI name (accepting the common aliases);
/// `None` if the name is not a zoo model.
pub fn by_name(name: &str, batch: u64) -> Option<Model> {
    Some(match name {
        "vgg16" => vgg16(batch),
        "alexnet" => alexnet(batch),
        "resnet50" => resnet50(batch),
        "resnext50" => resnext50(batch),
        "mobilenet_v2" | "mobilenetv2" => mobilenet_v2(batch),
        "unet" => unet(batch),
        "dcgan" => dcgan(batch),
        "deepspeech2" | "ds2" => deepspeech2(batch),
        "googlenet" => googlenet(batch),
        "efficientnet_b0" | "efficientnet" => efficientnet_b0(batch),
        _ => return None,
    })
}

pub fn figure10_models(batch: u64) -> Vec<Model> {
    vec![
        resnet50(batch),
        vgg16(batch),
        resnext50(batch),
        mobilenet_v2(batch),
        unet(batch),
    ]
}

/// A Table 4 row: an operator class with example layers drawn from the zoo.
#[derive(Debug, Clone)]
pub struct OperatorTableRow {
    /// The operator class.
    pub class: OperatorClass,
    /// `model/layer` names of example layers in the zoo.
    pub examples: Vec<String>,
}

/// Build paper Table 4: classify every layer of the given models and group
/// them by operator class (up to `max_examples` examples per class).
pub fn operator_table(models: &[Model], max_examples: usize) -> Vec<OperatorTableRow> {
    OperatorClass::ALL
        .iter()
        .map(|&class| {
            let mut examples = Vec::new();
            for m in models {
                for l in m.iter() {
                    if l.classify() == class && examples.len() < max_examples {
                        examples.push(format!("{}/{}", m.name, l.name));
                    }
                }
            }
            OperatorTableRow { class, examples }
        })
        .filter(|row| !row.examples.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::TensorKind;

    #[test]
    fn vgg16_shapes() {
        let m = vgg16(1);
        m.validate().unwrap();
        assert_eq!(m.len(), 16);
        let c2 = m.layer("CONV2").unwrap();
        assert_eq!((c2.dims.k, c2.dims.c), (64, 64));
        assert_eq!(c2.out_dims(), (224, 224));
        let c11 = m.layer("CONV11").unwrap();
        assert_eq!((c11.dims.k, c11.dims.c), (512, 512));
        assert_eq!(c11.out_dims(), (14, 14));
        // Published VGG16 conv MAC total is ~15.3 GMACs at batch 1.
        let conv_macs: u64 = m
            .iter()
            .filter(|l| matches!(l.op, Operator::Conv2d { .. }))
            .map(Layer::total_macs)
            .sum();
        assert!((14e9..17e9).contains(&(conv_macs as f64)), "{conv_macs}");
    }

    #[test]
    fn alexnet_shapes() {
        let m = alexnet(1);
        m.validate().unwrap();
        let c1 = m.layer("CONV1").unwrap();
        assert_eq!(c1.out_dims(), (55, 55));
        // ~0.7-1.2 GMACs for the conv layers.
        let conv_macs: u64 = m
            .iter()
            .filter(|l| matches!(l.op, Operator::Conv2d { .. }))
            .map(Layer::total_macs)
            .sum();
        assert!((0.5e9..1.5e9).contains(&(conv_macs as f64)), "{conv_macs}");
    }

    #[test]
    fn resnet50_totals() {
        let m = resnet50(1);
        m.validate().unwrap();
        // Published ResNet-50: ~3.8-4.1 GMACs.
        let macs = m.total_macs() as f64;
        assert!((3.0e9..5.0e9).contains(&macs), "{macs}");
        // 16 bottlenecks => 16 residual adds.
        let adds = m
            .iter()
            .filter(|l| l.op == Operator::ElementwiseAdd)
            .count();
        assert_eq!(adds, 16);
    }

    #[test]
    fn resnext50_has_grouped_convs() {
        let m = resnext50(1);
        m.validate().unwrap();
        let grouped = m
            .iter()
            .filter(|l| matches!(l.op, Operator::Conv2d { groups } if groups > 1))
            .count();
        assert_eq!(grouped, 16);
        // ResNeXt-50 32x4d: ~4.2 GMACs, close to ResNet-50.
        let macs = m.total_macs() as f64;
        assert!((3.2e9..5.5e9).contains(&macs), "{macs}");
    }

    #[test]
    fn mobilenet_v2_totals() {
        let m = mobilenet_v2(1);
        m.validate().unwrap();
        // Published MobileNetV2: ~0.3 GMACs.
        let macs = m.total_macs() as f64;
        assert!((0.2e9..0.5e9).contains(&macs), "{macs}");
        assert!(m.iter().any(|l| l.op == Operator::DepthwiseConv2d));
        // First bottleneck has t=1, so no expansion layer.
        assert!(m.layer("BN1_1_expand").is_none());
        assert!(m.layer("BN2_1_expand").is_some());
    }

    #[test]
    fn unet_shapes() {
        let m = unet(1);
        m.validate().unwrap();
        assert_eq!(m.layer("ENC1_1").unwrap().out_dims(), (570, 570));
        assert_eq!(m.layer("BOT_2").unwrap().out_dims(), (28, 28));
        assert_eq!(m.layer("UP1").unwrap().out_dims(), (56, 56));
        assert_eq!(m.layer("OUT").unwrap().out_dims(), (388, 388));
        // UNet is dominated by early-style wide layers.
        let macs = m.total_macs() as f64;
        assert!(macs > 100e9, "UNet should be tens of GMACs, got {macs}");
    }

    #[test]
    fn dcgan_shapes() {
        let m = dcgan(1);
        m.validate().unwrap();
        assert_eq!(m.layer("TCONV4").unwrap().out_dims(), (64, 64));
        let up = m.layer("TCONV1").unwrap();
        assert!(matches!(up.op, Operator::TransposedConv2d { upsample: 2 }));
        assert!((up.density.input - 0.25).abs() < 1e-12);
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let m1 = vgg16(1);
        let m4 = vgg16(4);
        assert_eq!(m4.total_macs(), 4 * m1.total_macs());
        assert_eq!(
            m4.layer("CONV1")
                .unwrap()
                .tensor_elements(TensorKind::Input),
            4 * m1
                .layer("CONV1")
                .unwrap()
                .tensor_elements(TensorKind::Input)
        );
    }

    #[test]
    fn operator_table_covers_classes() {
        let models = figure10_models(1);
        let table = operator_table(&models, 3);
        let classes: Vec<_> = table.iter().map(|r| r.class).collect();
        assert!(classes.contains(&OperatorClass::EarlyConv));
        assert!(classes.contains(&OperatorClass::LateConv));
        assert!(classes.contains(&OperatorClass::Pointwise));
        assert!(classes.contains(&OperatorClass::Depthwise));
        assert!(classes.contains(&OperatorClass::AggregatedResidual));
        assert!(classes.contains(&OperatorClass::Residual));
        assert!(classes.contains(&OperatorClass::Transposed));
        for row in &table {
            assert!(row.examples.len() <= 3);
        }
    }

    #[test]
    fn deepspeech2_is_gemm_dominated() {
        let m = deepspeech2(1);
        m.validate().unwrap();
        let lstm_macs: u64 = m
            .iter()
            .filter(|l| l.op == Operator::FullyConnected)
            .map(Layer::total_macs)
            .sum();
        assert!(
            lstm_macs as f64 / m.total_macs() as f64 > 0.5,
            "LSTMs should dominate"
        );
        // One LSTM step: 4H x (H + I) MACs x seq.
        let l1 = m.layer("LSTM1").unwrap();
        assert_eq!(l1.total_macs(), 50 * 4 * 1024 * (1024 + 32 * 21));
    }

    #[test]
    fn pooling_builder() {
        let p = pool("p", 1, 64, 112, 2, 2);
        p.validate().unwrap();
        assert_eq!(p.out_dims(), (56, 56));
        assert_eq!(p.classify(), OperatorClass::Pooling);
        assert_eq!(p.tensor_elements(TensorKind::Weight), 1);
    }

    #[test]
    fn googlenet_shapes() {
        let m = googlenet(1);
        m.validate().unwrap();
        // Published GoogLeNet: ~1.5 GMACs of convolutions.
        let conv_macs: u64 = m
            .iter()
            .filter(|l| matches!(l.op, Operator::Conv2d { .. }))
            .map(Layer::total_macs)
            .sum();
        assert!((1.0e9..2.2e9).contains(&(conv_macs as f64)), "{conv_macs}");
        // Nine inception blocks x 7 layers each + stem/pools/fc.
        assert_eq!(m.iter().filter(|l| l.name.starts_with("INC")).count(), 63);
        assert_eq!(m.layer("INC5b_5x5").unwrap().out_dims(), (7, 7));
    }

    #[test]
    fn efficientnet_b0_shapes() {
        let m = efficientnet_b0(1);
        m.validate().unwrap();
        // Published EfficientNet-B0: ~0.39 GMACs; SE FCs are tiny.
        let macs = m.total_macs() as f64;
        assert!((0.25e9..0.6e9).contains(&macs), "{macs}");
        assert!(
            m.layer("MB3_1_dw").unwrap().dims.r == 5,
            "5x5 depthwise stage"
        );
        assert!(m.layer("MB2_1_se1").is_some(), "squeeze-excite present");
    }

    #[test]
    fn transformer_encoder_macs() {
        let m = transformer_encoder(1, 128);
        m.validate().unwrap();
        // Hand check: QKV = seq*3H*H; scores/context = heads*seq*seq*d each;
        // proj = seq*H*H; FFN = 2*seq*H*F.
        let (s, h, f, heads, d) = (128u64, 768u64, 3072u64, 12u64, 64u64);
        let expect = s * 3 * h * h + heads * s * s * d * 2 + s * h * h + 2 * s * h * f + 2 * s * h; // residual adds
        assert_eq!(m.total_macs(), expect);
    }

    #[test]
    fn all_zoo_models_validate() {
        for m in [
            vgg16(2),
            alexnet(2),
            resnet50(2),
            resnext50(2),
            mobilenet_v2(2),
            unet(2),
            dcgan(2),
            deepspeech2(2),
            googlenet(2),
            efficientnet_b0(2),
            transformer_encoder(2, 64),
        ] {
            m.validate()
                .unwrap_or_else(|(n, e)| panic!("{}/{n}: {e}", m.name));
        }
    }
}

/// An LSTM cell at one time step, modeled as the paper models LSTMs
/// (§4.4): a GEMM over the four stacked gates — `4·hidden` outputs from
/// `hidden + input` features, batched over `seq` time steps. The
/// element-wise gate activations are negligible next to the GEMMs and are
/// not modeled.
pub fn lstm_cell(name: &str, seq: u64, hidden: u64, input: u64) -> Layer {
    fc(name, seq, 4 * hidden, hidden + input)
}

/// A DeepSpeech2-flavoured speech model (Amodei et al., cited in the
/// paper's introduction): a strided convolutional front-end over
/// spectrogram frames followed by a stack of LSTM layers and a CTC
/// projection. Shapes follow the published "2 conv + 5 RNN, 1024 hidden"
/// configuration at a 100-frame utterance.
pub fn deepspeech2(batch: u64) -> Model {
    let n = batch;
    let seq = 100;
    let mut m = Model::new("DeepSpeech2");
    // Conv front-end over (freq=161, time) spectrograms; the published
    // 41x11 and 21x11 kernels with stride 2 in both dims.
    m.push(Layer::new(
        "CONV1",
        Operator::conv2d(),
        LayerDims {
            n,
            k: 32,
            c: 1,
            y: 161,
            x: seq + 10,
            r: 41,
            s: 11,
            stride_y: 2,
            stride_x: 2,
        },
    ));
    m.push(Layer::new(
        "CONV2",
        Operator::conv2d(),
        LayerDims {
            n,
            k: 32,
            c: 32,
            y: 61,
            x: seq / 2 + 10,
            r: 21,
            s: 11,
            stride_y: 2,
            stride_x: 1,
        },
    ));
    // Five LSTM layers, hidden 1024; the first consumes the flattened
    // conv features (32 channels x 21 frequency bands).
    m.push(lstm_cell("LSTM1", n * seq / 2, 1024, 32 * 21));
    for i in 2..=5 {
        m.push(lstm_cell(&format!("LSTM{i}"), n * seq / 2, 1024, 1024));
    }
    m.push(fc("CTC", n * seq / 2, 29, 1024));
    m
}

/// Max-pooling layer builder (single-operand window reduction).
pub fn pool(name: &str, n: u64, c: u64, y: u64, window: u64, stride: u64) -> Layer {
    Layer::new(
        name,
        Operator::Pooling,
        LayerDims {
            n,
            k: 1,
            c,
            y,
            x: y,
            r: window,
            s: window,
            stride_y: stride,
            stride_x: stride,
        },
    )
}

/// One GoogLeNet inception block: four parallel branches (1×1; 1×1→3×3;
/// 1×1→5×5; pool→1×1) whose outputs concatenate. Concatenation itself
/// moves no MACs and is not modeled as a layer.
#[allow(clippy::too_many_arguments)]
fn inception(
    m: &mut Model,
    name: &str,
    n: u64,
    cin: u64,
    out: u64,
    b1: u64,
    b3r: u64,
    b3: u64,
    b5r: u64,
    b5: u64,
    pp: u64,
) {
    m.push(pw(&format!("{name}_1x1"), n, b1, cin, out));
    m.push(pw(&format!("{name}_3x3r"), n, b3r, cin, out));
    m.push(conv(&format!("{name}_3x3"), n, b3, b3r, out, 3, 1));
    m.push(pw(&format!("{name}_5x5r"), n, b5r, cin, out));
    m.push(conv(&format!("{name}_5x5"), n, b5, b5r, out, 5, 1));
    m.push(pool(&format!("{name}_pool"), n, cin, out + 2, 3, 1));
    m.push(pw(&format!("{name}_poolproj"), n, pp, cin, out));
}

/// GoogLeNet / Inception-v1 (Szegedy et al.): the nine inception blocks
/// with their published branch widths, plus the stem and classifier.
pub fn googlenet(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("GoogLeNet");
    m.push(conv("CONV1", n, 64, 3, 112, 7, 2));
    m.push(pool("POOL1", n, 64, 112, 3, 2));
    m.push(pw("CONV2r", n, 64, 64, 56));
    m.push(conv("CONV2", n, 192, 64, 56, 3, 1));
    m.push(pool("POOL2", n, 192, 56, 3, 2));
    // (name, cin, out, 1x1, 3x3r, 3x3, 5x5r, 5x5, poolproj)
    #[allow(clippy::type_complexity)]
    let blocks: [(&str, u64, u64, u64, u64, u64, u64, u64, u64); 9] = [
        ("INC3a", 192, 28, 64, 96, 128, 16, 32, 32),
        ("INC3b", 256, 28, 128, 128, 192, 32, 96, 64),
        ("INC4a", 480, 14, 192, 96, 208, 16, 48, 64),
        ("INC4b", 512, 14, 160, 112, 224, 24, 64, 64),
        ("INC4c", 512, 14, 128, 128, 256, 24, 64, 64),
        ("INC4d", 512, 14, 112, 144, 288, 32, 64, 64),
        ("INC4e", 528, 14, 256, 160, 320, 32, 128, 128),
        ("INC5a", 832, 7, 256, 160, 320, 32, 128, 128),
        ("INC5b", 832, 7, 384, 192, 384, 48, 128, 128),
    ];
    for (name, cin, out, b1, b3r, b3, b5r, b5, pp) in blocks {
        inception(&mut m, name, n, cin, out, b1, b3r, b3, b5r, b5, pp);
    }
    m.push(fc("FC", n, 1000, 1024));
    m
}

/// Depth-wise convolution with an arbitrary square kernel.
fn dwk(name: &str, n: u64, c: u64, out: u64, k: u64, stride: u64) -> Layer {
    let y = (out - 1) * stride + k;
    Layer::new(
        name,
        Operator::DepthwiseConv2d,
        LayerDims {
            n,
            k: 1,
            c,
            y,
            x: y,
            r: k,
            s: k,
            stride_y: stride,
            stride_x: stride,
        },
    )
}

/// EfficientNet-B0 (Tan & Le): MBConv blocks — point-wise expansion,
/// depth-wise 3×3/5×5, squeeze-and-excitation (two tiny FCs over pooled
/// channels), point-wise projection — with the published widths.
pub fn efficientnet_b0(batch: u64) -> Model {
    let n = batch;
    let mut m = Model::new("EfficientNetB0");
    m.push(conv("STEM", n, 32, 3, 112, 3, 2));
    // (expansion, kernel, cout, repeats, first stride)
    let cfg: [(u64, u64, u64, u64, u64); 7] = [
        (1, 3, 16, 1, 1),
        (6, 3, 24, 2, 2),
        (6, 5, 40, 2, 2),
        (6, 3, 80, 3, 2),
        (6, 5, 112, 3, 1),
        (6, 5, 192, 4, 2),
        (6, 3, 320, 1, 1),
    ];
    let mut cin = 32;
    let mut size = 112;
    for (bi, (t, k, cout, reps, first_stride)) in cfg.iter().enumerate() {
        for r in 0..*reps {
            let stride = if r == 0 { *first_stride } else { 1 };
            let out = size / stride;
            let hidden = cin * t;
            let p = format!("MB{}_{}", bi + 1, r + 1);
            if *t != 1 {
                m.push(pw(&format!("{p}_expand"), n, hidden, cin, size));
            }
            m.push(dwk(&format!("{p}_dw"), n, hidden, out, *k, stride));
            // Squeeze-and-excitation: global-pool then two FCs
            // (reduction ratio 4 of the block's input channels).
            let squeezed = (cin / 4).max(1);
            m.push(fc(&format!("{p}_se1"), n, squeezed, hidden));
            m.push(fc(&format!("{p}_se2"), n, hidden, squeezed));
            m.push(pw(&format!("{p}_project"), n, *cout, hidden, out));
            if stride == 1 && cin == *cout {
                m.push(residual(&format!("{p}_add"), n, *cout, out));
            }
            cin = *cout;
            size = out;
        }
    }
    m.push(pw("HEAD", n, 1280, 320, 7));
    m.push(fc("FC", n, 1000, 1280));
    m
}

/// A Transformer encoder block (BERT-base-like: hidden 768, 12 heads,
/// FFN 3072) over a `seq`-token sequence, lowered to the GEMM-class
/// operators the cost model understands: QKV/output projections, per-head
/// attention-score and attention-value GEMMs, and the two FFN layers.
/// Softmax/layernorm move negligible MACs and are not modeled.
pub fn transformer_encoder(batch: u64, seq: u64) -> Model {
    let n = batch;
    let hidden = 768u64;
    let heads = 12u64;
    let head_dim = hidden / heads;
    let ffn = 3072u64;
    let mut m = Model::new("TransformerEncoder");
    // Fused QKV projection: one GEMM with 3*hidden outputs per token.
    m.push(fc("QKV", n * seq, 3 * hidden, hidden));
    // Attention scores: for each head, Q(seq x d) x K^T(d x seq) — a GEMM
    // with seq "batch" rows, seq outputs, d reduction, repeated per head.
    m.push(fc("SCORES", n * heads * seq, seq, head_dim));
    // Attention-weighted values: scores(seq x seq) x V(seq x d).
    m.push(fc("CONTEXT", n * heads * seq, head_dim, seq));
    // Output projection and the FFN pair.
    m.push(fc("PROJ", n * seq, hidden, hidden));
    m.push(fc("FFN1", n * seq, ffn, hidden));
    m.push(fc("FFN2", n * seq, hidden, ffn));
    // Two residual links around attention and FFN.
    m.push(residual("ADD_ATTN", n * seq, hidden, 1));
    m.push(residual("ADD_FFN", n * seq, hidden, 1));
    m
}

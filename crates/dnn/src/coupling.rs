//! Tensor kinds and dimension coupling.
//!
//! A dimension is *coupled* to a tensor when changing the dimension's index
//! moves the position in that tensor's data space (paper §2.1). The coupling
//! table is what the Tensor Analysis engine extracts for each operator, and
//! everything downstream — reuse, traffic, buffer sizing — is derived from
//! it, which is what gives the model its generality across operator types.

use crate::dim::Dim;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role of a tensor in a layer operation.
///
/// MAESTRO models operations with up to two input operands and one output
/// (paper §4.4): `O += W * I` for convolutions and GEMMs, `O = A + B` for
/// residual links, `O = pool(I)` for pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Input activation (multicast-type reuse).
    Input,
    /// Filter weight (multicast-type reuse).
    Weight,
    /// Output activation / partial sums (reduction-type reuse).
    Output,
}

impl TensorKind {
    /// All three tensor kinds.
    pub const ALL: [TensorKind; 3] = [TensorKind::Input, TensorKind::Weight, TensorKind::Output];

    /// `true` if this tensor is an operand that is *read* by the computation.
    pub const fn is_operand(self) -> bool {
        matches!(self, TensorKind::Input | TensorKind::Weight)
    }
}

impl fmt::Display for TensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TensorKind::Input => "Input",
            TensorKind::Weight => "Weight",
            TensorKind::Output => "Output",
        };
        f.write_str(s)
    }
}

/// A compact set of [`Dim`]s, used for coupling and reduction-dimension sets.
///
/// ```
/// use maestro_dnn::{Dim, coupling::DimSet};
/// let s = DimSet::of(&[Dim::K, Dim::C]);
/// assert!(s.contains(Dim::K));
/// assert!(!s.contains(Dim::Y));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DimSet {
    bits: u8,
}

impl DimSet {
    /// The empty set.
    pub const fn empty() -> Self {
        DimSet { bits: 0 }
    }

    /// Build a set from a slice of dimensions.
    pub fn of(dims: &[Dim]) -> Self {
        let mut s = Self::empty();
        for &d in dims {
            s.insert(d);
        }
        s
    }

    /// Insert a dimension.
    pub fn insert(&mut self, d: Dim) {
        self.bits |= 1 << d.index();
    }

    /// Remove a dimension.
    pub fn remove(&mut self, d: Dim) {
        self.bits &= !(1 << d.index());
    }

    /// Membership test.
    pub const fn contains(&self, d: Dim) -> bool {
        self.bits & (1 << d.index()) != 0
    }

    /// Number of dimensions in the set.
    pub const fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// `true` when no dimension is in the set.
    pub const fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterate the members in canonical dimension order.
    pub fn iter(&self) -> impl Iterator<Item = Dim> + '_ {
        crate::dim::ALL_DIMS
            .iter()
            .copied()
            .filter(move |&d| self.contains(d))
    }
}

impl fmt::Display for DimSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for d in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The dimension-coupling description of one layer operation.
///
/// This is the output of the Tensor Analysis engine: which of the seven
/// dimensions each tensor is coupled to, and which dimensions are
/// *reduction* dimensions (accumulated away to produce the output).
///
/// Window pairs `(Y,R)` and `(X,S)` are handled specially everywhere:
/// the output is coupled to the pair as a whole (`y' = y - r`), so a
/// coupling that contains `Y` (or `R`) in [`Coupling::output`] means "the
/// output row index is derived from the mapped `Y`/`R` window".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coupling {
    /// Dimensions coupled to the input activation tensor.
    pub input: DimSet,
    /// Dimensions coupled to the filter weight tensor (empty for ops
    /// without weights, e.g. pooling or residual addition).
    pub weight: DimSet,
    /// Dimensions that index the output tensor. For window pairs, both
    /// halves are listed; the derived output extent is computed from them.
    pub output: DimSet,
    /// Reduction dimensions: iterating these accumulates partial sums into
    /// the same output element.
    pub reduction: DimSet,
}

impl Coupling {
    /// The classic dense CONV2D coupling (paper Figure 1):
    /// `I[n][c][y][x]`, `W[k][c][r][s]`, `O[n][k][y'][x']`, reduction over
    /// `C, R, S`.
    pub fn conv2d() -> Self {
        Coupling {
            input: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X]),
            weight: DimSet::of(&[Dim::K, Dim::C, Dim::R, Dim::S]),
            output: DimSet::of(&[Dim::N, Dim::K, Dim::Y, Dim::X, Dim::R, Dim::S]),
            reduction: DimSet::of(&[Dim::C, Dim::R, Dim::S]),
        }
    }

    /// Depth-wise convolution: the output is coupled to the *input* channel
    /// dimension and there is no cross-channel reduction (paper §4.1).
    pub fn depthwise() -> Self {
        Coupling {
            input: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X]),
            weight: DimSet::of(&[Dim::C, Dim::R, Dim::S]),
            output: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]),
            reduction: DimSet::of(&[Dim::R, Dim::S]),
        }
    }

    /// GEMM / fully-connected coupling: `O[n][k] += W[k][c] * I[n][c]`.
    pub fn gemm() -> Self {
        Coupling {
            input: DimSet::of(&[Dim::N, Dim::C]),
            weight: DimSet::of(&[Dim::K, Dim::C]),
            output: DimSet::of(&[Dim::N, Dim::K]),
            reduction: DimSet::of(&[Dim::C]),
        }
    }

    /// Pooling: a single input operand, no weights, window reduction.
    pub fn pooling() -> Self {
        Coupling {
            input: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X]),
            weight: DimSet::empty(),
            output: DimSet::of(&[Dim::N, Dim::C, Dim::Y, Dim::X, Dim::R, Dim::S]),
            reduction: DimSet::of(&[Dim::R, Dim::S]),
        }
    }

    /// Element-wise residual addition: two operands of identical shape.
    /// The "weight" operand is the second activation tensor.
    pub fn elementwise() -> Self {
        let all = DimSet::of(&[Dim::N, Dim::K, Dim::Y, Dim::X]);
        Coupling {
            input: all,
            weight: all,
            output: all,
            reduction: DimSet::empty(),
        }
    }

    /// The coupling set for a given tensor kind.
    pub fn coupled(&self, kind: TensorKind) -> DimSet {
        match kind {
            TensorKind::Input => self.input,
            TensorKind::Weight => self.weight,
            TensorKind::Output => self.output,
        }
    }

    /// `true` when `d` is coupled to tensor `kind`.
    pub fn is_coupled(&self, kind: TensorKind, d: Dim) -> bool {
        self.coupled(kind).contains(d)
    }

    /// `true` when `d` is a reduction dimension of this operation.
    pub fn is_reduction(&self, d: Dim) -> bool {
        self.reduction.contains(d)
    }

    /// `true` when the operation slides a filter window over the input
    /// (i.e. the output extent along `Y`/`X` is derived from `(Y,R)` /
    /// `(X,S)` pairs rather than equal to the mapped size).
    pub fn has_sliding_window(&self) -> bool {
        self.output.contains(Dim::Y) && self.output.contains(Dim::R)
            || self.output.contains(Dim::X) && self.output.contains(Dim::S)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::ALL_DIMS;

    #[test]
    fn dimset_insert_remove_iter() {
        let mut s = DimSet::empty();
        assert!(s.is_empty());
        s.insert(Dim::R);
        s.insert(Dim::N);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Dim::N, Dim::R]);
        s.remove(Dim::N);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(Dim::N));
    }

    #[test]
    fn dimset_display() {
        let s = DimSet::of(&[Dim::C, Dim::K]);
        assert_eq!(s.to_string(), "{K,C}");
        assert_eq!(DimSet::empty().to_string(), "{}");
    }

    #[test]
    fn conv2d_coupling_matches_figure1() {
        let c = Coupling::conv2d();
        // Input: N, C, Y, X
        assert!(c.is_coupled(TensorKind::Input, Dim::N));
        assert!(c.is_coupled(TensorKind::Input, Dim::C));
        assert!(!c.is_coupled(TensorKind::Input, Dim::K));
        // Weight: K, C, R, S
        assert!(c.is_coupled(TensorKind::Weight, Dim::K));
        assert!(!c.is_coupled(TensorKind::Weight, Dim::Y));
        // Reductions: C, R, S
        assert!(c.is_reduction(Dim::C));
        assert!(c.is_reduction(Dim::R));
        assert!(!c.is_reduction(Dim::K));
        assert!(c.has_sliding_window());
    }

    #[test]
    fn depthwise_has_no_channel_reduction_and_no_k() {
        let c = Coupling::depthwise();
        assert!(!c.is_reduction(Dim::C));
        assert!(c.is_coupled(TensorKind::Output, Dim::C));
        assert!(!c.is_coupled(TensorKind::Weight, Dim::K));
    }

    #[test]
    fn gemm_has_no_window() {
        let c = Coupling::gemm();
        assert!(!c.has_sliding_window());
        assert!(c.is_reduction(Dim::C));
    }

    #[test]
    fn pooling_has_no_weight_coupling() {
        let c = Coupling::pooling();
        assert!(c.weight.is_empty());
        assert!(c.is_reduction(Dim::R));
    }

    #[test]
    fn elementwise_has_no_reduction() {
        let c = Coupling::elementwise();
        assert!(c.reduction.is_empty());
        for d in ALL_DIMS {
            assert_eq!(
                c.is_coupled(TensorKind::Input, d),
                c.is_coupled(TensorKind::Weight, d),
                "both operands of a residual add have the same shape"
            );
        }
    }
}

//! Offline stand-in for the `serde` derive macros.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde`/`serde_derive` cannot be fetched. This crate provides
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` with the same spelling
//! and derive-site syntax, generating implementations of the traits in the
//! sibling `serde` shim crate:
//!
//! * `Serialize` impls walk the type and emit JSON through
//!   `serde::JsonWriter`, matching serde_json's externally-tagged enum
//!   encoding (unit variant -> `"Name"`, newtype variant -> `{"Name": v}`,
//!   tuple variant -> `{"Name": [..]}`, struct variant -> `{"Name": {..}}`).
//! * `Deserialize` impls are empty markers — nothing in this workspace
//!   deserializes, the derive only has to keep existing code compiling.
//!
//! The parser is deliberately small: it supports the shapes this workspace
//! uses (non-generic structs with named fields, tuple structs, enums with
//! unit/tuple/struct variants) and panics with a clear message on anything
//! else, so a future type that needs more support fails loudly at compile
//! time rather than serializing incorrectly.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// A parsed `struct`/`enum` definition — just enough shape information to
/// generate a field-by-field serializer.
struct TypeDef {
    name: String,
    body: Body,
}

enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    generate_serialize(&def)
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}"))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    format!("impl ::serde::Deserialize for {} {{}}", def.name)
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}"))
}

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    let name = match &tokens[i] {
        TokenTree::Ident(id) => {
            i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }
    let body = if kind == "struct" {
        match tokens.get(i) {
            None => Body::Struct(Fields::Unit),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(other) => panic!("serde_derive: unexpected token after struct name: {other}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    };
    TypeDef { name, body }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's bracketed group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional restriction, e.g. pub(crate)
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body. Types are skipped by consuming until
/// a comma outside any angle-bracket nesting (`<`/`>` are plain puncts in a
/// token stream, so `Vec<(A, B)>`-style commas must not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn generate_serialize(def: &TypeDef) -> String {
    let mut body = String::new();
    match &def.body {
        Body::Struct(Fields::Unit) => body.push_str("__serde_w.write_null();"),
        Body::Struct(Fields::Named(fields)) => {
            body.push_str("__serde_w.begin_object();");
            for f in fields {
                let _ = write!(
                    body,
                    "__serde_w.field(\"{f}\"); ::serde::Serialize::serialize(&self.{f}, __serde_w);"
                );
            }
            body.push_str("__serde_w.end_object();");
        }
        Body::Struct(Fields::Tuple(1)) => {
            body.push_str("::serde::Serialize::serialize(&self.0, __serde_w);");
        }
        Body::Struct(Fields::Tuple(n)) => {
            body.push_str("__serde_w.begin_array();");
            for k in 0..*n {
                let _ = write!(
                    body,
                    "__serde_w.element(); ::serde::Serialize::serialize(&self.{k}, __serde_w);"
                );
            }
            body.push_str("__serde_w.end_array();");
        }
        Body::Enum(variants) => {
            body.push_str("match self {");
            for (v, fields) in variants {
                let name = &def.name;
                match fields {
                    Fields::Unit => {
                        let _ = write!(body, "{name}::{v} => __serde_w.write_str(\"{v}\"),");
                    }
                    Fields::Tuple(1) => {
                        let _ = write!(
                            body,
                            "{name}::{v}(f0) => {{ __serde_w.begin_object(); __serde_w.field(\"{v}\"); \
                             ::serde::Serialize::serialize(f0, __serde_w); __serde_w.end_object(); }}"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{v}({}) => {{ __serde_w.begin_object(); __serde_w.field(\"{v}\"); \
                             __serde_w.begin_array();",
                            binders.join(", ")
                        );
                        for b in &binders {
                            let _ = write!(
                                body,
                                "__serde_w.element(); ::serde::Serialize::serialize({b}, __serde_w);"
                            );
                        }
                        body.push_str("__serde_w.end_array(); __serde_w.end_object(); }");
                    }
                    Fields::Named(fs) => {
                        let _ = write!(
                            body,
                            "{name}::{v} {{ {} }} => {{ __serde_w.begin_object(); __serde_w.field(\"{v}\"); \
                             __serde_w.begin_object();",
                            fs.join(", ")
                        );
                        for f in fs {
                            let _ = write!(
                                body,
                                "__serde_w.field(\"{f}\"); ::serde::Serialize::serialize({f}, __serde_w);"
                            );
                        }
                        body.push_str("__serde_w.end_object(); __serde_w.end_object(); }");
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize(&self, __serde_w: &mut ::serde::JsonWriter) {{ {body} }}\n\
         }}",
        def.name
    )
}

//! Offline stand-in for `criterion`, implementing the subset of its API
//! this workspace's benches use.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the `benches/*.rs` files compiling
//! and producing useful wall-clock numbers: each `bench_function` warms
//! the closure up once, then runs it under a fixed timing budget and
//! prints the mean iteration time. There is no statistical analysis,
//! HTML report, or command-line filtering.

use std::time::{Duration, Instant};

/// Timing budget per benchmark. Fixed rather than adaptive; long-running
/// closures still finish because at least one timed iteration always runs.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), f);
        self
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim uses a fixed time budget
    /// instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    smoke_only: bool,
}

impl Bencher {
    /// Time `routine` repeatedly until the budget is spent.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Untimed warm-up pass (doubles as the smoke-test pass).
        std::hint::black_box(routine());
        if self.smoke_only {
            return;
        }
        let budget_start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if budget_start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    // `cargo bench` passes `--bench`; anything else (e.g. `cargo test
    // --benches`) is treated as a smoke test, like real criterion.
    if !std::env::args().any(|a| a == "--bench") {
        let mut b = Bencher {
            smoke_only: true,
            ..Bencher::default()
        };
        f(&mut b);
        println!("{name:<50} (smoke test, 1 iteration)");
        return;
    }
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<50} (no iterations)");
        return;
    }
    let mean = b.total / u32::try_from(b.iters).unwrap_or(u32::MAX).max(1);
    println!("{name:<50} mean {mean:>12.3?}   ({} iterations)", b.iters);
}

/// Bundle benchmark functions into a single runner, mirroring the real
/// `criterion_group!` shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group, mirroring the real `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters >= 1);
        // Warm-up pass plus timed passes.
        assert_eq!(count, b.iters + 1);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
    }

    criterion_group!(test_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    #[test]
    fn group_macro_expands() {
        test_group();
    }
}

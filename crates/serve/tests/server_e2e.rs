//! End-to-end daemon tests over real TCP sockets: routing, admission
//! control, deadlines, panic isolation, slow-loris, drain.
//!
//! Each test binds its own server on `127.0.0.1:0`; the shutdown token is
//! a *detached* token cancelled explicitly (the process-interrupt path is
//! covered by the CLI integration test, which drives the real binary with
//! signals). Metric assertions use ≥ deltas — the registry is process
//! global and tests run concurrently.

use maestro_obs::CancelToken;
use maestro_serve::{DrainOutcome, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

struct Daemon {
    addr: SocketAddr,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<DrainOutcome>>,
}

impl Daemon {
    fn start(cfg: ServeConfig) -> Daemon {
        let server = Server::bind(cfg).expect("bind 127.0.0.1:0");
        let addr = server.local_addr().expect("local addr");
        let shutdown = CancelToken::detached();
        let token = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&token));
        Daemon {
            addr,
            shutdown,
            handle,
        }
    }

    fn stop(self) -> DrainOutcome {
        self.shutdown.cancel();
        self.handle
            .join()
            .expect("server thread")
            .expect("server run")
    }
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// Send one raw request (the caller includes `Connection: close`) and
/// collect the full response.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).ok();
    s.write_all(raw).expect("write request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

fn get(addr: SocketAddr, path: &str) -> String {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    raw_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

#[test]
fn routing_health_metrics_and_errors() {
    let d = Daemon::start(test_config());
    assert_eq!(status_of(&get(d.addr, "/healthz")), 200);
    assert_eq!(status_of(&get(d.addr, "/readyz")), 200);
    let resp = get(d.addr, "/nope");
    assert_eq!(status_of(&resp), 404);
    assert_eq!(status_of(&post(d.addr, "/healthz", "")), 405);
    assert_eq!(status_of(&post(d.addr, "/v1/analyze", "{oops")), 400);
    assert_eq!(
        status_of(&post(d.addr, "/v1/analyze", "{\"model\":\"not-a-model\"}")),
        400
    );
    let metrics = get(d.addr, "/metrics");
    assert_eq!(status_of(&metrics), 200);
    assert!(
        metrics.contains("maestro_serve_requests_total"),
        "exposition misses serve counters: {metrics:?}"
    );
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn analyze_layer_model_and_deadline() {
    let d = Daemon::start(test_config());
    // Single layer.
    let resp = post(
        d.addr,
        "/v1/analyze",
        "{\"model\":\"alexnet\",\"layer\":\"CONV1\",\"dataflow\":\"KC-P\",\"pes\":64}",
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"report\""), "{resp}");
    assert!(resp.contains("\"runtime\""), "{resp}");
    // Whole model (served through the shared cache).
    let resp = post(d.addr, "/v1/analyze", "{\"model\":\"alexnet\",\"pes\":64}");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"layers\""), "{resp}");
    // An already-expired deadline is a typed 504 with the partial marker.
    let resp = post(
        d.addr,
        "/v1/analyze",
        "{\"model\":\"alexnet\",\"deadline_ms\":0}",
    );
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert!(resp.contains("\"partial\":true"), "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn dse_and_conform_round_trips() {
    let d = Daemon::start(test_config());
    let resp = post(
        d.addr,
        "/v1/dse",
        "{\"model\":\"alexnet\",\"layer\":\"CONV3\",\"style\":\"KC-P\",\"space\":\"tiny\"}",
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"partial\":false"), "{resp}");
    assert!(resp.contains("\"pareto\""), "{resp}");
    let resp = post(d.addr, "/v1/conform", "{\"cases\":5,\"max_steps\":20000}");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"diverged\""), "{resp}");
    // A conform sweep with an expired budget still reports partially.
    let resp = post(
        d.addr,
        "/v1/conform",
        "{\"cases\":100000,\"deadline_ms\":0}",
    );
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert!(resp.contains("\"partial\":true"), "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn batch_serves_many_points_with_per_item_error_isolation() {
    let d = Daemon::start(test_config());
    // Eight good points across alexnet's conv layers, one bad point
    // wedged in the middle.
    let mut points: Vec<String> = (0..8)
        .map(|i| {
            format!(
                "{{\"model\":\"alexnet\",\"layer\":\"CONV{}\",\"pes\":64}}",
                (i % 5) + 1
            )
        })
        .collect();
    points.insert(3, "{\"model\":\"alexnet\",\"layer\":\"NOPE\"}".to_string());
    let body = format!("{{\"points\":[{}]}}", points.join(","));
    let resp = post(d.addr, "/v1/batch", &body);
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"count\":9"), "{resp}");
    // The eight good points analyzed; the bad one is an error *element*,
    // not a failed batch.
    assert_eq!(resp.matches("\"report\"").count(), 8, "{resp}");
    assert_eq!(resp.matches("\"error\"").count(), 1, "{resp}");
    assert!(resp.contains("no layer `NOPE`"), "{resp}");
    // Malformed batch envelopes are typed 400s.
    assert_eq!(status_of(&post(d.addr, "/v1/batch", "{}")), 400);
    assert_eq!(status_of(&post(d.addr, "/v1/batch", "{\"points\":3}")), 400);
    // An expired deadline yields the typed 504 with the partial results
    // array (here: empty — the token is checked before the first point).
    let resp = post(
        d.addr,
        "/v1/batch",
        &format!("{{\"deadline_ms\":0,\"points\":[{}]}}", points.join(",")),
    );
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert!(resp.contains("\"partial\":true"), "{resp}");
    assert!(resp.contains("\"results\":["), "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn dse_stream_emits_ndjson_unit_lines_and_a_final_result() {
    use maestro_serve::Value;
    let d = Daemon::start(test_config());
    let resp = post(
        d.addr,
        "/v1/dse",
        "{\"model\":\"alexnet\",\"layer\":\"CONV3\",\"style\":\"KC-P\",\"space\":\"tiny\",\"stream\":true}",
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("application/x-ndjson"), "{resp}");
    assert!(
        !resp.contains("Content-Length:"),
        "streams are EOF-framed: {resp}"
    );
    let body = resp.split_once("\r\n\r\n").expect("head/body split").1;
    let lines: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        lines.len() > 1,
        "expected per-unit lines plus a final line: {body:?}"
    );
    // Unit lines parse, and `completed` is strictly monotone — the
    // engine fires the callback under its completion lock.
    let mut last_completed = 0;
    for line in &lines[..lines.len() - 1] {
        let v = maestro_serve::parse_json(line).expect("unit line is well-formed JSON");
        let completed = v
            .get("completed")
            .and_then(Value::as_u64)
            .expect("unit line carries `completed`");
        assert!(completed > last_completed, "non-monotone stream: {body:?}");
        last_completed = completed;
        assert!(v.get("pareto").is_some() || v.get("failed").is_some());
    }
    let fin =
        maestro_serve::parse_json(lines[lines.len() - 1]).expect("final line is well-formed JSON");
    assert_eq!(fin.get("final").and_then(Value::as_bool), Some(true));
    assert_eq!(fin.get("partial").and_then(Value::as_bool), Some(false));
    assert!(fin.get("result").is_some(), "{body:?}");
    // Validation failures surface *before* the first streamed byte, as
    // ordinary buffered errors.
    let resp = post(d.addr, "/v1/dse", "{\"stream\":true}");
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn dse_thread_requests_are_capped_server_side() {
    // Regression: `threads` used to be clamped only to a hardwired 64.
    // With the cap at 1, an absurd request must still serve fine (on one
    // thread) instead of spawning hundreds.
    let d = Daemon::start(ServeConfig {
        max_request_threads: 1,
        ..test_config()
    });
    let resp = post(
        d.addr,
        "/v1/dse",
        "{\"model\":\"alexnet\",\"layer\":\"CONV3\",\"space\":\"tiny\",\"threads\":999999}",
    );
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("\"partial\":false"), "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn queue_depth_gauge_is_registered_and_sampled() {
    let d = Daemon::start(test_config());
    // Serve a few requests so both sampling points (push and pop) ran.
    for _ in 0..3 {
        assert_eq!(status_of(&get(d.addr, "/healthz")), 200);
    }
    let metrics = get(d.addr, "/metrics");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("maestro_serve_queue_depth"))
        .unwrap_or_else(|| panic!("queue_depth gauge missing from exposition: {metrics}"));
    let depth: f64 = line
        .split_whitespace()
        .last()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparseable gauge line: {line}"));
    // The registry is process-global and other daemons run concurrently,
    // so mid-drive values are unobservable here; the pin is that the
    // gauge exists, was sampled, and holds a sane (non-negative) depth.
    assert!(depth >= 0.0, "{line}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn handler_panics_are_isolated_to_the_request() {
    let d = Daemon::start(ServeConfig {
        test_endpoints: true,
        workers: 1, // the one worker must survive its handler panicking
        ..test_config()
    });
    let before = maestro_obs::registry()
        .counter("maestro.serve.panics")
        .get();
    let resp = post(d.addr, "/v1/panic", "{}");
    assert_eq!(status_of(&resp), 500, "{resp}");
    assert!(resp.contains("internal panic"), "{resp}");
    // The sole worker survived and keeps serving.
    assert_eq!(status_of(&get(d.addr, "/healthz")), 200);
    let after = maestro_obs::registry()
        .counter("maestro.serve.panics")
        .get();
    assert!(after > before, "panic counter must increment");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let d = Daemon::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        io_timeout: Duration::from_secs(5),
        ..test_config()
    });
    // Occupy the only worker: connect and send half a request — the
    // worker blocks reading the rest.
    let mut hold_worker = TcpStream::connect(d.addr).expect("connect");
    hold_worker.write_all(b"POST /v1/analyze HTTP/1.1\r\n").ok();
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue with a second held connection.
    let mut hold_queue = TcpStream::connect(d.addr).expect("connect");
    hold_queue.write_all(b"GET /healthz HT").ok();
    std::thread::sleep(Duration::from_millis(150));
    // The third connection must be shed immediately, and the hint is
    // *computed* (queue depth × observed median service time, clamped to
    // [1, drain deadline]) — not the old hard-coded `1`.
    let resp = get(d.addr, "/healthz");
    assert_eq!(status_of(&resp), 503, "{resp}");
    let retry_after: u64 = resp
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("missing or unparseable Retry-After: {resp:?}"));
    let drain_secs = ServeConfig::default().drain_deadline.as_secs();
    assert!(
        (1..=drain_secs).contains(&retry_after),
        "Retry-After {retry_after} outside [1, {drain_secs}]: {resp:?}"
    );
    drop(hold_worker);
    drop(hold_queue);
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn brownout_serves_deadline_pressed_analyze_from_cache() {
    let d = Daemon::start(test_config());
    let body = "{\"model\":\"alexnet\",\"layer\":\"CONV2\",\"dataflow\":\"KC-P\",\"pes\":64}";
    // Warm the shared report cache with a full-fidelity analyze.
    let resp = post(d.addr, "/v1/analyze", body);
    assert_eq!(status_of(&resp), 200, "{resp}");
    // The same shape with an already-expired deadline is served degraded
    // from the report cache: 200 + the brownout marker, not a 504.
    let degraded_body =
        "{\"model\":\"alexnet\",\"layer\":\"CONV2\",\"dataflow\":\"KC-P\",\"pes\":64,\"deadline_ms\":0}";
    let resp = post(d.addr, "/v1/analyze", degraded_body);
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert!(resp.contains("x-maestro-degraded: cache-only"), "{resp}");
    assert!(resp.contains("\"report\""), "{resp}");
    // An *uncached* shape under the same pressure still sheds as a 504 —
    // brownout never fabricates results.
    let resp = post(
        d.addr,
        "/v1/analyze",
        "{\"model\":\"alexnet\",\"layer\":\"CONV4\",\"dataflow\":\"YX-P\",\"pes\":96,\"deadline_ms\":0}",
    );
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn slow_loris_gets_408_and_oversized_gets_413() {
    let d = Daemon::start(ServeConfig {
        io_timeout: Duration::from_millis(250),
        ..test_config()
    });
    // Half a request, then silence past the read timeout.
    let mut s = TcpStream::connect(d.addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    s.write_all(b"GET /healthz HTTP/1.1\r\nHos").expect("write");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    assert_eq!(status_of(&out), 408, "{out}");
    // A body over the limit is rejected from its headers alone.
    let resp = raw_request(
        d.addr,
        b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 413, "{resp}");
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn pipelined_requests_share_a_connection() {
    let d = Daemon::start(test_config());
    let first = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    let second = "GET /readyz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let out = raw_request(d.addr, format!("{first}{second}").as_bytes());
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        2,
        "expected two pipelined 200s: {out:?}"
    );
    assert_eq!(d.stop(), DrainOutcome::Clean);
}

#[test]
fn forced_drain_cancels_in_flight_but_still_writes_the_response() {
    let d = Daemon::start(ServeConfig {
        drain_deadline: Duration::from_millis(200),
        ..test_config()
    });
    // A long request: a big conform sweep with an hour-long deadline.
    let addr = d.addr;
    let client = std::thread::spawn(move || {
        post(
            addr,
            "/v1/conform",
            "{\"cases\":1000000,\"deadline_ms\":3600000}",
        )
    });
    std::thread::sleep(Duration::from_millis(300)); // let it get in flight
    let outcome = d.stop();
    assert_eq!(outcome, DrainOutcome::Forced);
    // The in-flight request was cancelled, not dropped: the client still
    // received a well-formed 504 with partial results.
    let resp = client.join().expect("client thread");
    assert_eq!(status_of(&resp), 504, "{resp}");
    assert!(resp.contains("\"partial\":true"), "{resp}");
}

#[test]
fn clean_drain_finishes_in_flight_requests() {
    let d = Daemon::start(ServeConfig {
        drain_deadline: Duration::from_secs(30),
        ..test_config()
    });
    // A request long enough to still be in flight when the drain starts,
    // short enough to finish well inside the drain deadline.
    let addr = d.addr;
    let client = std::thread::spawn(move || post(addr, "/v1/conform", "{\"cases\":40}"));
    std::thread::sleep(Duration::from_millis(50));
    let outcome = d.stop();
    let resp = client.join().expect("client thread");
    assert_eq!(outcome, DrainOutcome::Clean);
    assert_eq!(status_of(&resp), 200, "{resp}");
}

//! Parser fuzz suite: the HTTP/1.1 request parser and the JSON body
//! parser must never panic on any byte sequence, and every rejection
//! must carry exactly one typed status (`400` malformed, `413`
//! oversized; `408` — the slow-loris class — is decided by the
//! connection loop and covered by the end-to-end tests).

use maestro_serve::http::{parse_request, HttpError, Limits, Parsed};
use maestro_serve::json;
use proptest::collection;
use proptest::prelude::*;

const VALID: &[u8] = b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 27\r\n\r\n{\"model\":\"vgg16\",\"pes\":256}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes, permissive and tiny limits: no panic, and any
    /// error is one of the two typed classes.
    #[test]
    fn http_parser_never_panics_on_arbitrary_bytes(
        bytes in collection::vec(0u8..=255, 0..1024),
    ) {
        for limits in [
            Limits::default(),
            Limits { max_head_bytes: 64, max_body_bytes: 32 },
        ] {
            match parse_request(&bytes, &limits) {
                Ok(Parsed::Partial | Parsed::Complete { .. }) => {}
                Err(e) => prop_assert!(matches!(e.status(), 400 | 413), "{e:?}"),
            }
        }
    }

    /// Every strict prefix of a valid request is `Partial` — the
    /// connection loop keeps reading, it never misclassifies a
    /// truncation as malformed.
    #[test]
    fn truncations_of_a_valid_request_are_partial(cut in 0usize..10_000) {
        let cut = cut % VALID.len();
        prop_assert_eq!(
            parse_request(&VALID[..cut], &Limits::default()).unwrap(),
            Parsed::Partial,
            "cut at {}", cut
        );
    }

    /// Single-byte corruptions of a valid request parse without panicking
    /// (whether they yield Complete, Partial, or a typed rejection
    /// depends on which byte flipped).
    #[test]
    fn mutated_requests_never_panic(
        (idx, byte) in (0usize..10_000, 0u8..=255),
    ) {
        let mut raw = VALID.to_vec();
        let n = raw.len();
        raw[idx % n] = byte;
        match parse_request(&raw, &Limits::default()) {
            Ok(_) => {}
            Err(e) => prop_assert!(matches!(e.status(), 400 | 413)),
        }
    }

    /// Pipelined requests followed by arbitrary garbage: the first two
    /// parses consume exactly the valid requests; the third attempt (the
    /// garbage) must not panic.
    #[test]
    fn pipelined_requests_with_garbage_tail_never_panic(
        tail in collection::vec(0u8..=255, 0..256),
    ) {
        let mut buf = VALID.to_vec();
        buf.extend_from_slice(VALID);
        buf.extend_from_slice(&tail);
        for _ in 0..2 {
            match parse_request(&buf, &Limits::default()).unwrap() {
                Parsed::Complete { req, consumed } => {
                    prop_assert_eq!(req.path.as_str(), "/v1/analyze");
                    buf.drain(..consumed);
                }
                Parsed::Partial => prop_assert!(false, "valid request misread as partial"),
            }
        }
        let _ = parse_request(&buf, &Limits::default());
    }

    /// Any declared body over the limit is the `413` class, regardless of
    /// how far over it is.
    #[test]
    fn oversized_declared_bodies_get_413(extra in 1u64..1_000_000_000) {
        let limits = Limits { max_head_bytes: 8192, max_body_bytes: 4096 };
        let raw = format!(
            "POST /v1/analyze HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            limits.max_body_bytes as u64 + extra
        );
        prop_assert_eq!(
            parse_request(raw.as_bytes(), &limits).unwrap_err(),
            HttpError::TooLarge("declared body exceeds limit")
        );
    }

    /// Any C0 control byte (other than HTAB) or DEL anywhere in a header
    /// value is always the `400` class — DEL slipped through before this
    /// was pinned.
    #[test]
    fn control_and_del_bytes_in_header_values_get_400(
        prefix in collection::vec(0x20u8..=0x7e, 0..16),
        // Index into the 32 forbidden bytes: C0 minus HTAB (0..=8,
        // 10..=31), plus DEL.
        bad in (0usize..32).prop_map(|i| match i {
            0..=8 => i as u8,
            9..=30 => (i + 1) as u8,
            _ => 0x7f,
        }),
        suffix in collection::vec(0x20u8..=0x7e, 0..16),
    ) {
        let mut raw = b"GET /a HTTP/1.1\r\nH: ".to_vec();
        raw.extend_from_slice(&prefix);
        raw.push(bad);
        raw.extend_from_slice(&suffix);
        raw.extend_from_slice(b"\r\n\r\n");
        let err = parse_request(&raw, &Limits::default()).unwrap_err();
        prop_assert_eq!(err.status(), 400, "byte {:#04x} admitted", bad);
    }

    /// A `close` token anywhere in a `Connection` list value always
    /// closes, whatever tokens surround it.
    #[test]
    fn close_token_in_connection_list_always_closes(
        others in collection::vec(collection::vec(0u8..26, 1..9), 0..3)
            .prop_map(|ts| ts
                .into_iter()
                .map(|t| t.into_iter().map(|c| (b'a' + c) as char).collect::<String>())
                .collect::<Vec<String>>()),
        pos in 0usize..4,
    ) {
        let mut tokens = others;
        tokens.insert(pos.min(tokens.len()), "close".to_string());
        let raw = format!(
            "GET /a HTTP/1.1\r\nConnection: {}\r\n\r\n",
            tokens.join(", ")
        );
        match parse_request(raw.as_bytes(), &Limits::default()) {
            Ok(Parsed::Complete { req, .. }) => prop_assert!(req.close),
            other => prop_assert!(false, "expected complete parse, got {other:?}"),
        }
    }

    /// The JSON parser accepts arbitrary (lossily decoded) text without
    /// panicking.
    #[test]
    fn json_parser_never_panics(bytes in collection::vec(0u8..=255, 0..512)) {
        let lossy = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&lossy);
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = json::parse(s);
        }
    }

    /// Serialization round-trip: anything the response writer emits has a
    /// correct `Content-Length` framing (a client can rely on it).
    #[test]
    fn response_framing_is_self_consistent(
        status in 0usize..6,
        body in collection::vec(32u8..=126, 0..128),
    ) {
        let status = [200u16, 400, 404, 500, 503, 504][status];
        let body = String::from_utf8_lossy(&body).into_owned();
        let resp = maestro_serve::http::Response::json(status, body.clone());
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        let (head, got_body) = text.split_once("\r\n\r\n").unwrap();
        prop_assert_eq!(got_body, body.as_str());
        prop_assert!(head.contains(&format!("Content-Length: {}", body.len())));
        prop_assert!(head.starts_with(&format!("HTTP/1.1 {status} ")));
    }
}

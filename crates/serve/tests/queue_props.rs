//! Property tests for `BoundedQueue`: the admission queue is the one
//! structure every connection passes through, so its invariants — no
//! lost items, no duplicated items, deterministic close-drain — hold
//! under arbitrary concurrent push/pop/close interleavings or the
//! daemon's "an accepted connection is a promise" contract is void.

use maestro_serve::BoundedQueue;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Run `producers` threads pushing disjoint item ranges and `consumers`
/// threads popping until closed-and-drained; returns (accepted items,
/// popped items).
fn run_interleaving(
    cap: usize,
    producers: usize,
    per_producer: usize,
    consumers: usize,
    close_after: usize,
) -> (Vec<u64>, Vec<u64>) {
    let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(cap));
    let accepted_count = Arc::new(AtomicU64::new(0));

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        })
        .collect();

    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let q = Arc::clone(&q);
            let accepted_count = Arc::clone(&accepted_count);
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                for i in 0..per_producer {
                    let item = (p * per_producer + i) as u64;
                    // A refused push is the shed path: the item is handed
                    // back and (here) abandoned, exactly like a shed
                    // connection.
                    if q.try_push(item).is_ok() {
                        accepted.push(item);
                        let n = accepted_count.fetch_add(1, Ordering::Relaxed) + 1;
                        if n as usize == close_after {
                            q.close();
                        }
                    }
                    if i % 7 == 3 {
                        std::thread::yield_now();
                    }
                }
                accepted
            })
        })
        .collect();

    let mut accepted: Vec<u64> = Vec::new();
    for h in producer_handles {
        accepted.extend(h.join().unwrap());
    }
    // All producers done: close (idempotent if a producer already did).
    q.close();
    let mut popped: Vec<u64> = Vec::new();
    for h in consumer_handles {
        popped.extend(h.join().unwrap());
    }
    (accepted, popped)
}

fn multiset(items: &[u64]) -> HashMap<u64, usize> {
    let mut m = HashMap::new();
    for &i in items {
        *m.entry(i).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every successfully pushed item is popped exactly once — nothing
    /// lost, nothing duplicated — no matter how producers, consumers and
    /// a mid-stream close interleave.
    #[test]
    fn no_item_is_lost_or_duplicated(
        cap in 1usize..16,
        producers in 1usize..4,
        per_producer in 1usize..24,
        consumers in 1usize..4,
        close_frac in 0u8..=4,
    ) {
        // close_after = 0 means "close only after producers finish";
        // otherwise close mid-stream after roughly a fraction of pushes.
        let total = producers * per_producer;
        let close_after = if close_frac == 0 {
            0
        } else {
            (total * close_frac as usize / 4).max(1)
        };
        let (accepted, popped) = run_interleaving(
            cap, producers, per_producer, consumers, close_after,
        );
        prop_assert_eq!(
            multiset(&accepted),
            multiset(&popped),
            "popped multiset must equal accepted multiset"
        );
    }

    /// Close-drain is deterministic: whatever is queued at close is
    /// recoverable in FIFO order, then every pop returns `None` forever.
    #[test]
    fn close_drains_deterministically(
        cap in 1usize..32,
        queued in 0usize..32,
    ) {
        let q: BoundedQueue<u64> = BoundedQueue::new(cap);
        let mut pushed = Vec::new();
        for i in 0..queued as u64 {
            if q.try_push(i).is_ok() {
                pushed.push(i);
            }
        }
        q.close();
        prop_assert_eq!(q.try_push(99), Err(99), "closed queue refuses");
        let mut drained = Vec::new();
        while let Some(item) = q.pop() {
            drained.push(item);
        }
        prop_assert_eq!(drained, pushed, "drain preserves admitted items, in order");
        prop_assert_eq!(q.pop(), None, "closed and drained stays empty");
        prop_assert_eq!(q.len(), 0);
    }
}

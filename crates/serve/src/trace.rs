//! Per-request latency attribution: a phase timer installed per worker
//! thread, and the JSONL access log.
//!
//! The connection loop creates a [`RequestTimer`] when a request finishes
//! parsing (pre-filling the `queue` and `parse` phases it measured
//! itself) and installs it thread-locally; the routing and handler code
//! deeper in the stack calls the free [`mark`] function to advance the
//! attribution (`analyze` when dispatch begins, `serialize` when the
//! response starts encoding) without threading a timer argument through
//! every signature. After the response bytes are written, the connection
//! loop takes the timer back, finishes it into a
//! [`TraceRecord`], offers that to the process-global
//! [`FlightRecorder`], and appends one [`AccessLog`] line.
//!
//! Phase model: a trace is an ordered list of half-open phases measured
//! against one anchor instant (accept time for a connection's first
//! request, first-byte time for keep-alive successors). Consecutive
//! same-named phases merge, so the HTTP parse and the JSON body decode
//! both land in one `parse` phase. Whatever phase is open when the
//! response hits the wire absorbs the write — for `/v1` requests that is
//! `serialize`, which is exactly where response bytes are produced.

use maestro_obs::trace::{FlightRecorder, KeepReason, Phase, TraceId, TraceRecord};
use std::cell::RefCell;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// An in-progress request trace: phases accumulated against one anchor.
#[derive(Debug)]
pub struct RequestTimer {
    id: TraceId,
    anchor: Instant,
    start_unix_ms: u64,
    phases: Vec<Phase>,
    open: Option<(&'static str, Instant)>,
}

impl RequestTimer {
    /// Start a trace anchored at `anchor` (which may lie in the past —
    /// accept time precedes the worker pop that builds the timer).
    pub fn begin(anchor: Instant) -> RequestTimer {
        RequestTimer {
            id: maestro_obs::trace::next_trace_id(),
            anchor,
            start_unix_ms: unix_ms(),
            phases: Vec::with_capacity(4),
            open: None,
        }
    }

    /// The trace ID (the `x-maestro-trace` header value).
    pub fn id(&self) -> TraceId {
        self.id
    }

    fn off(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.anchor).as_micros() as u64
    }

    fn push(&mut self, name: &'static str, start_us: u64, end_us: u64) {
        let dur_us = end_us.saturating_sub(start_us);
        // Merge contiguous same-named phases (HTTP parse + JSON decode).
        if let Some(last) = self.phases.last_mut() {
            if last.name == name && last.start_us + last.dur_us >= start_us {
                last.dur_us = end_us.saturating_sub(last.start_us);
                return;
            }
        }
        self.phases.push(Phase {
            name,
            start_us,
            dur_us,
        });
    }

    /// Record a completed phase spanning `[from, to]`.
    pub fn phase_span(&mut self, name: &'static str, from: Instant, to: Instant) {
        let (a, b) = (self.off(from), self.off(to));
        self.push(name, a, b);
    }

    /// Close the open phase (if any) at `now` and open `name`.
    pub fn mark(&mut self, name: &'static str) {
        let now = Instant::now();
        if let Some((open_name, t0)) = self.open.take() {
            let (a, b) = (self.off(t0), self.off(now));
            self.push(open_name, a, b);
        }
        self.open = Some((name, now));
    }

    /// Close the trace: whatever phase is open absorbs the remainder,
    /// and the total is the full anchored wall time.
    pub fn finish(mut self, name: String, status: u16, bytes: u64) -> TraceRecord {
        let now = Instant::now();
        if let Some((open_name, t0)) = self.open.take() {
            let (a, b) = (self.off(t0), self.off(now));
            self.push(open_name, a, b);
        }
        TraceRecord {
            id: self.id,
            name,
            status,
            start_unix_ms: self.start_unix_ms,
            total_us: self.off(now),
            bytes,
            phases: self.phases,
            // Placeholder: the recorder stamps the real reason on keep.
            kept: KeepReason::Sampled,
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<RequestTimer>> = const { RefCell::new(None) };
}

/// Install `timer` as this worker thread's active request timer.
pub fn install(timer: RequestTimer) {
    ACTIVE.with(|a| *a.borrow_mut() = Some(timer));
}

/// Advance the active timer to phase `name`. No-op when no timer is
/// installed (unit tests calling handlers directly, the DSE path).
pub fn mark(name: &'static str) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.mark(name);
        }
    });
}

/// The active timer's trace ID, if one is installed.
pub fn active_id() -> Option<TraceId> {
    ACTIVE.with(|a| a.borrow().as_ref().map(RequestTimer::id))
}

/// Remove and return the active timer.
pub fn take() -> Option<RequestTimer> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Fold a record's phases into the four canonical access-log columns.
/// Phases outside the canon (`shed`, future names) count as analyze time
/// — they are handler-side work.
fn fold_phases(rec: &TraceRecord) -> (u64, u64, u64, u64) {
    let (mut queue, mut parse, mut analyze, mut serialize) = (0u64, 0u64, 0u64, 0u64);
    for p in &rec.phases {
        match p.name {
            "queue" => queue += p.dur_us,
            "parse" => parse += p.dur_us,
            "serialize" => serialize += p.dur_us,
            _ => analyze += p.dur_us,
        }
    }
    (queue, parse, analyze, serialize)
}

/// Render one access-log line (no trailing newline). Schema:
/// `{"trace_id","route","status","bytes","total_us","queue_us",
/// "parse_us","analyze_us","serialize_us"}`.
pub fn access_line(rec: &TraceRecord) -> String {
    let (queue, parse, analyze, serialize) = fold_phases(rec);
    let mut route = String::with_capacity(rec.name.len());
    for c in rec.name.chars() {
        match c {
            '"' => route.push_str("\\\""),
            '\\' => route.push_str("\\\\"),
            c if (c as u32) < 0x20 => route.push_str(&format!("\\u{:04x}", c as u32)),
            c => route.push(c),
        }
    }
    format!(
        "{{\"trace_id\":\"{}\",\"route\":\"{}\",\"status\":{},\"bytes\":{},\"total_us\":{},\
         \"queue_us\":{},\"parse_us\":{},\"analyze_us\":{},\"serialize_us\":{}}}",
        rec.id.to_hex(),
        route,
        rec.status,
        rec.bytes,
        rec.total_us,
        queue,
        parse,
        analyze,
        serialize
    )
}

/// The JSONL access log: one line per completed request, written under a
/// mutex (requests finish on worker threads; the log must interleave by
/// whole lines).
pub struct AccessLog {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AccessLog")
    }
}

impl AccessLog {
    /// An access log writing to `path`, with `-` meaning stdout.
    ///
    /// # Errors
    ///
    /// Propagates the file-create failure.
    pub fn open(path: &str) -> std::io::Result<AccessLog> {
        let sink: Box<dyn Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::File::create(path)?)
        };
        Ok(AccessLog {
            sink: Mutex::new(sink),
        })
    }

    /// Append one line for `rec`. Write errors are swallowed — losing an
    /// access-log line must never fail a request.
    pub fn write(&self, rec: &TraceRecord) {
        let line = access_line(rec);
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

/// Finish the active timer (if any) for a response with `status` whose
/// body is `bytes` long: offer the record to the global flight recorder
/// and the access log. Called by the connection loop after the response
/// bytes hit the wire.
pub fn finish_active(route: &str, status: u16, bytes: u64, log: Option<&AccessLog>) {
    let Some(timer) = take() else {
        return;
    };
    let rec = timer.finish(route.to_string(), status, bytes);
    if let Some(log) = log {
        log.write(&rec);
    }
    let _ = FlightRecorder::global().record(rec);
}

/// Finish the active timer for a request whose response write *failed*:
/// the client never received the body, so recording the handler's status
/// would log a success that did not happen. The record is finished with
/// status `499` (client closed request — the nginx convention) and zero
/// bytes, and is force-kept in the flight recorder regardless of the
/// sampling policy: a failed write is an error outcome and must stay
/// diagnosable after the fact.
pub fn finish_active_write_failed(route: &str, log: Option<&AccessLog>) {
    let Some(timer) = take() else {
        return;
    };
    let rec = timer.finish(route.to_string(), 499, 0);
    if let Some(log) = log {
        log.write(&rec);
    }
    FlightRecorder::global().keep(rec, KeepReason::Error);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn phases_merge_and_partition_the_total() {
        let anchor = Instant::now();
        let mut t = RequestTimer::begin(anchor);
        t.phase_span("queue", anchor, anchor + Duration::from_micros(100));
        t.phase_span(
            "parse",
            anchor + Duration::from_micros(100),
            anchor + Duration::from_micros(150),
        );
        // Contiguous same-name phase merges into the previous one.
        t.phase_span(
            "parse",
            anchor + Duration::from_micros(150),
            anchor + Duration::from_micros(250),
        );
        t.mark("analyze");
        std::thread::sleep(Duration::from_millis(2));
        t.mark("serialize");
        let rec = t.finish("GET /x".to_string(), 200, 10);
        let names: Vec<&str> = rec.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["queue", "parse", "analyze", "serialize"]);
        let parse = &rec.phases[1];
        assert_eq!((parse.start_us, parse.dur_us), (100, 150), "{rec:?}");
        let sum: u64 = rec.phases.iter().map(|p| p.dur_us).sum();
        // queue+parse are anchored in the past; analyze+serialize cover
        // [mark("analyze"), finish]. The only unattributed gap is
        // [250µs, mark("analyze")] — microseconds of test overhead.
        assert!(
            rec.total_us.abs_diff(sum) < rec.total_us / 5 + 200,
            "total {} vs phase sum {sum}: {rec:?}",
            rec.total_us
        );
    }

    #[test]
    fn access_line_folds_to_canonical_columns() {
        let anchor = Instant::now();
        let mut t = RequestTimer::begin(anchor);
        t.phase_span("queue", anchor, anchor + Duration::from_micros(10));
        t.phase_span(
            "parse",
            anchor + Duration::from_micros(10),
            anchor + Duration::from_micros(30),
        );
        t.phase_span(
            "weird",
            anchor + Duration::from_micros(30),
            anchor + Duration::from_micros(70),
        );
        let mut rec = t.finish("POST /v1/\"q\"".to_string(), 200, 5);
        rec.total_us = 70;
        let line = access_line(&rec);
        assert!(line.contains("\"route\":\"POST /v1/\\\"q\\\"\""), "{line}");
        assert!(line.contains("\"queue_us\":10"), "{line}");
        assert!(line.contains("\"parse_us\":20"), "{line}");
        assert!(line.contains("\"analyze_us\":40"), "{line}"); // `weird` folds in
        assert!(line.contains("\"serialize_us\":0"), "{line}");
        assert!(line.contains("\"total_us\":70"), "{line}");
        assert!(line.contains(&format!("\"trace_id\":\"{}\"", rec.id.to_hex())));
        // The line is valid JSON by our own parser.
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(
            v.get("status").and_then(crate::json::Value::as_u64),
            Some(200)
        );
    }

    #[test]
    fn thread_local_install_mark_take() {
        assert!(take().is_none());
        mark("noop-without-timer");
        let t = RequestTimer::begin(Instant::now());
        let id = t.id();
        install(t);
        assert_eq!(active_id(), Some(id));
        mark("analyze");
        let t = take().unwrap();
        let rec = t.finish("x".to_string(), 200, 0);
        assert_eq!(rec.phases.last().map(|p| p.name), Some("analyze"));
        assert!(take().is_none());
    }
}

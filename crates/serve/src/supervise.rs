//! Worker supervision: heartbeats, liveness accounting, and the
//! bookkeeping behind the watchdog's crashed/wedged detection.
//!
//! Each worker thread owns a [`WorkerSlot`] and beats its heartbeat at
//! every loop iteration (and around every connection it serves). The
//! watchdog in `server.rs` reads the slots to decide three things:
//!
//! * **crashed** — the worker's `JoinHandle` finished with a panic; the
//!   watchdog respawns the slot (`maestro.serve.worker_restarts`).
//! * **wedged** — the slot is busy and its heartbeat is older than the
//!   configured wedge threshold; the thread cannot be killed (std has no
//!   safe thread cancellation), so the slot is *superseded* — excluded
//!   from liveness — and a replacement slot is spawned in its place. If
//!   the wedged thread eventually returns, it finds its slot superseded
//!   and exits instead of double-serving.
//! * **quorum** — `/readyz` reports 503 while the number of live
//!   (alive, not superseded, not wedged) workers is below quorum.
//!
//! All fields are atomics: workers beat on the hot path, and the
//! watchdog and `/readyz` read without taking any lock the workers
//! contend on.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-worker liveness record, shared between the worker thread, the
/// watchdog, and `/readyz`.
#[derive(Debug)]
pub struct WorkerSlot {
    /// Stable worker index (re-used across respawns of the same slot).
    pub index: usize,
    /// False once the worker's closure has returned or unwound.
    alive: AtomicBool,
    /// True once the watchdog has given up on this slot and spawned a
    /// replacement; a superseded worker that wakes up must exit.
    superseded: AtomicBool,
    /// True while the worker is inside `serve_connection`.
    busy: AtomicBool,
    /// Last heartbeat, in milliseconds since the table's epoch.
    heartbeat_ms: AtomicU64,
}

impl WorkerSlot {
    /// Record a heartbeat at `now_ms` (milliseconds since table epoch).
    pub fn beat(&self, now_ms: u64) {
        self.heartbeat_ms.store(now_ms, Ordering::Relaxed);
    }

    /// Mark the worker as serving a connection (and beat).
    pub fn set_busy(&self, busy: bool, now_ms: u64) {
        self.busy.store(busy, Ordering::Relaxed);
        self.beat(now_ms);
    }

    /// Mark the worker's closure as exited (normally or by panic).
    pub fn set_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// Has the watchdog replaced this slot? A superseded worker should
    /// stop popping work and exit.
    pub fn is_superseded(&self) -> bool {
        self.superseded.load(Ordering::Relaxed)
    }

    /// Exclude this slot from liveness and from further wedge scans.
    pub fn supersede(&self) {
        self.superseded.store(true, Ordering::Relaxed);
    }

    /// Milliseconds since the last heartbeat, as seen at `now_ms`.
    pub fn heartbeat_age_ms(&self, now_ms: u64) -> u64 {
        now_ms.saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed))
    }

    /// Is this slot wedged: busy, not yet superseded, and silent for
    /// longer than `wedge_after` (0 disables the check)?
    pub fn is_wedged(&self, now_ms: u64, wedge_after: Duration) -> bool {
        !wedge_after.is_zero()
            && self.busy.load(Ordering::Relaxed)
            && !self.is_superseded()
            && self.heartbeat_age_ms(now_ms) > wedge_after.as_millis() as u64
    }

    /// Does this slot count toward quorum right now?
    pub fn is_live(&self, now_ms: u64, wedge_after: Duration) -> bool {
        self.alive.load(Ordering::Relaxed)
            && !self.is_superseded()
            && !self.is_wedged(now_ms, wedge_after)
    }
}

/// The set of worker slots plus the drain/quorum state the watchdog and
/// `/readyz` consult.
#[derive(Debug)]
pub struct WorkerTable {
    epoch: Instant,
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    /// Minimum live workers for `/readyz` to report ready.
    pub quorum: usize,
    /// Configured worker count (reported in the `/readyz` body).
    pub configured: usize,
    /// Busy-with-stale-heartbeat threshold; zero disables wedge checks.
    pub wedge_after: Duration,
    draining: AtomicBool,
    /// Worker threads whose slot registration is still active; the drain
    /// path waits on this instead of joining handles, because a wedged
    /// superseded thread may never finish.
    active: AtomicUsize,
}

impl WorkerTable {
    /// A table for `configured` workers. `quorum == 0` means majority:
    /// `(configured + 1) / 2`.
    pub fn new(configured: usize, quorum: usize, wedge_after: Duration) -> WorkerTable {
        let quorum = if quorum == 0 {
            configured.div_ceil(2)
        } else {
            quorum.min(configured)
        };
        WorkerTable {
            epoch: Instant::now(),
            slots: Mutex::new(Vec::with_capacity(configured)),
            quorum,
            configured,
            wedge_after,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        }
    }

    /// Milliseconds since the table was created; the unit heartbeats are
    /// stamped in.
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Register a fresh slot with index `index`, already beating.
    pub fn new_slot(&self, index: usize) -> Arc<WorkerSlot> {
        let slot = Arc::new(WorkerSlot {
            index,
            alive: AtomicBool::new(true),
            superseded: AtomicBool::new(false),
            busy: AtomicBool::new(false),
            heartbeat_ms: AtomicU64::new(self.now_ms()),
        });
        self.lock_slots().push(Arc::clone(&slot));
        slot
    }

    /// Snapshot of every slot ever registered (including superseded and
    /// dead ones, for heartbeat gauges).
    pub fn slots(&self) -> Vec<Arc<WorkerSlot>> {
        self.lock_slots().clone()
    }

    /// Drop slots that are dead or superseded-and-dead from the table so
    /// gauges and `slots()` don't grow without bound across restarts.
    pub fn retire_dead(&self) {
        self.lock_slots()
            .retain(|s| s.alive.load(Ordering::Relaxed));
    }

    /// Workers currently counting toward quorum.
    pub fn live(&self) -> usize {
        let now = self.now_ms();
        self.lock_slots()
            .iter()
            .filter(|s| s.is_live(now, self.wedge_after))
            .count()
    }

    /// Is the pool at or above quorum?
    pub fn has_quorum(&self) -> bool {
        self.live() >= self.quorum
    }

    /// Flip the table into drain mode (watchdog stops wedge-replacing).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Is the daemon draining?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Number of worker threads whose [`ThreadGuard`] is still alive.
    pub fn active_threads(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    fn lock_slots(&self) -> std::sync::MutexGuard<'_, Vec<Arc<WorkerSlot>>> {
        // A panic while holding this lock only poisons bookkeeping;
        // recover the inner state rather than wedging the watchdog.
        self.slots
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// RAII registration of a worker thread with its table: increments
/// `active_threads` on creation and decrements on drop, *including* when
/// the worker unwinds from a panic — so the drain path can wait on
/// "every worker thread has left its loop" without joining handles.
#[derive(Debug)]
pub struct ThreadGuard {
    table: Arc<WorkerTable>,
    slot: Arc<WorkerSlot>,
}

impl ThreadGuard {
    /// Register `slot`'s thread as active.
    pub fn register(table: Arc<WorkerTable>, slot: Arc<WorkerSlot>) -> ThreadGuard {
        table.active.fetch_add(1, Ordering::Relaxed);
        ThreadGuard { table, slot }
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.slot.set_dead();
        self.table.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_WEDGE: Duration = Duration::ZERO;

    #[test]
    fn quorum_defaults_to_majority_and_clamps_to_pool_size() {
        assert_eq!(WorkerTable::new(4, 0, NO_WEDGE).quorum, 2);
        assert_eq!(WorkerTable::new(5, 0, NO_WEDGE).quorum, 3);
        assert_eq!(WorkerTable::new(1, 0, NO_WEDGE).quorum, 1);
        assert_eq!(WorkerTable::new(4, 3, NO_WEDGE).quorum, 3);
        assert_eq!(WorkerTable::new(2, 9, NO_WEDGE).quorum, 2);
    }

    #[test]
    fn live_count_tracks_death_and_supersession() {
        let table = WorkerTable::new(3, 2, NO_WEDGE);
        let a = table.new_slot(0);
        let b = table.new_slot(1);
        let _c = table.new_slot(2);
        assert_eq!(table.live(), 3);
        assert!(table.has_quorum());

        a.set_dead();
        assert_eq!(table.live(), 2);
        assert!(table.has_quorum());

        b.supersede();
        assert_eq!(table.live(), 1);
        assert!(!table.has_quorum());

        // A respawn restores quorum.
        table.new_slot(1);
        assert_eq!(table.live(), 2);
        assert!(table.has_quorum());
    }

    #[test]
    fn wedge_detection_requires_busy_and_a_stale_heartbeat() {
        let wedge = Duration::from_millis(50);
        let table = WorkerTable::new(1, 1, wedge);
        let slot = table.new_slot(0);
        let now = table.now_ms();

        // Idle and silent for a long time: not wedged (blocked in pop).
        slot.beat(0);
        assert!(!slot.is_wedged(now + 10_000, wedge));
        assert!(slot.is_live(now + 10_000, wedge));

        // Busy and fresh: fine.
        slot.set_busy(true, now);
        assert!(!slot.is_wedged(now + 10, wedge));

        // Busy and stale: wedged, and no longer live.
        assert!(slot.is_wedged(now + 51, wedge));
        assert!(!slot.is_live(now + 51, wedge));

        // Superseding removes it from further wedge scans.
        slot.supersede();
        assert!(!slot.is_wedged(now + 51, wedge));
        assert!(!slot.is_live(now + 51, wedge));

        // Zero threshold disables the check entirely.
        let lazy = table.new_slot(1);
        lazy.set_busy(true, 0);
        assert!(!lazy.is_wedged(1_000_000, NO_WEDGE));
    }

    #[test]
    fn thread_guard_counts_down_even_across_panics() {
        let table = Arc::new(WorkerTable::new(2, 1, NO_WEDGE));
        let slot = table.new_slot(0);
        let guard = ThreadGuard::register(Arc::clone(&table), Arc::clone(&slot));
        assert_eq!(table.active_threads(), 1);
        drop(guard);
        assert_eq!(table.active_threads(), 0);
        assert!(!slot.is_live(table.now_ms(), NO_WEDGE));

        let slot2 = table.new_slot(1);
        let t2 = Arc::clone(&table);
        let s2 = Arc::clone(&slot2);
        let res = std::thread::spawn(move || {
            let _guard = ThreadGuard::register(t2, s2);
            panic!("worker dies");
        })
        .join();
        assert!(res.is_err());
        assert_eq!(table.active_threads(), 0, "unwind releases the guard");
        assert!(!slot2.is_live(table.now_ms(), NO_WEDGE));
    }

    #[test]
    fn retire_dead_drops_only_dead_slots() {
        let table = WorkerTable::new(2, 1, NO_WEDGE);
        let a = table.new_slot(0);
        let _b = table.new_slot(1);
        a.set_dead();
        table.retire_dead();
        let remaining = table.slots();
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].index, 1);
    }
}

//! Request routing and the analyze / dse / conform endpoint handlers.
//!
//! Endpoints (see the README "Serving" section for the JSON schemas):
//!
//! * `GET /healthz` — liveness: `200` while the process runs.
//! * `GET /readyz` — readiness: `200` while accepting, `503` once a
//!   drain has started.
//! * `GET /metrics` — the process-global Prometheus exposition.
//! * `POST /v1/analyze` — one cost-model evaluation (layer or whole
//!   model), served through the shared analysis cache.
//! * `POST /v1/batch` — many analyze points through one connection, one
//!   JSON parse and one cache session, with per-item error isolation.
//! * `POST /v1/dse` — a bounded design-space exploration session. With
//!   `"stream": true` the response is `application/x-ndjson`: one line
//!   per completed unit (its local Pareto frontier), then a final line
//!   carrying the merged result and session stats.
//! * `POST /v1/conform` — a conformance sweep against the simulator.
//! * `POST /v1/panic` — test-only (off by default): panics in the
//!   handler, to exercise worker panic isolation.
//!
//! Every `/v1` request runs under a child [`CancelToken`] carrying the
//! request deadline (`deadline_ms` in the body, else the server default).
//! A tripped deadline yields `504` with `"partial": true` and whatever
//! partial result the engine produced; the token is a *child*, so the
//! timeout can never cancel the server or a sibling request.
//!
//! Model references resolve through [`maestro_dnn::zoo`] *only* — a
//! network-facing daemon must not read arbitrary filesystem paths on
//! behalf of its clients.

use crate::http::{Request, Response};
use crate::json::{self, Value};
use crate::queue::AdmissionCtl;
use crate::server::ServeMetrics;
use crate::supervise::WorkerTable;
use maestro_core::{AnalysisError, LayerReport, ModelReport, SharedAnalysisCache};
use maestro_dnn::{zoo, Model};
use maestro_hw::Accelerator;
use maestro_ir::{Dataflow, Style};
use maestro_obs::trace::{records_to_json, FlightRecorder, TraceId};
use maestro_obs::CancelToken;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deadlines are clamped to this ceiling; an absent or absurd
/// `deadline_ms` cannot pin a worker for hours.
const MAX_DEADLINE: Duration = Duration::from_secs(3600);

/// `/v1/batch` accepts at most this many points per request — enough for
/// any realistic layers × configs sweep through one connection, small
/// enough that one request cannot monopolize a worker for minutes.
pub const MAX_BATCH_POINTS: usize = 4096;

/// What serving a request produced: a buffered [`Response`] the
/// connection loop writes, or the accounting for a response the handler
/// already streamed to the socket (NDJSON), where only the close and the
/// trace finish remain.
pub enum Handled {
    /// A full response to serialize and write.
    Response(Response),
    /// The handler wrote the response itself, incrementally.
    Streamed(StreamSummary),
}

/// Accounting for a streamed response (headers + NDJSON lines already on
/// the wire). Streamed responses always close the connection — there is
/// no `Content-Length`, so EOF is the framing.
#[derive(Debug, Clone, Copy)]
pub struct StreamSummary {
    /// Status of the already-written status line (always 200: errors
    /// detected before the first byte return a buffered `Response`).
    pub status: u16,
    /// Body bytes written (NDJSON lines, excluding headers).
    pub bytes: u64,
    /// A socket write failed mid-stream; the client saw a truncation.
    pub write_failed: bool,
}

/// Clamp a client-requested `threads` to the server-side cap: absent or
/// zero requests run single-threaded, and no request can exceed
/// `max_request_threads` however large a value it sends.
pub fn effective_threads(requested: u64, cap: usize) -> usize {
    (requested.max(1).min(usize::MAX as u64) as usize).min(cap.max(1))
}

/// Shared state behind a streaming response: the cloned socket handle
/// plus write accounting. Held in an `Arc<Mutex<..>>` so the `'static`
/// per-unit callback and the handler can both reach it; the engine fires
/// callbacks under its completion lock, so lines never interleave.
struct StreamSink {
    sock: TcpStream,
    bytes: u64,
    failed: bool,
}

impl StreamSink {
    /// Write one NDJSON line (appends `\n`). After the first failed
    /// write the sink goes inert — the peer is gone; analysis still
    /// completes and is cached for the next request.
    fn line(&mut self, json: &str) {
        if self.failed {
            return;
        }
        let mut buf = Vec::with_capacity(json.len() + 1);
        buf.extend_from_slice(json.as_bytes());
        buf.push(b'\n');
        if self.sock.write_all(&buf).is_ok() {
            self.bytes += buf.len() as u64;
        } else {
            self.failed = true;
        }
    }
}

/// Shared, immutable context every worker thread serves requests from.
pub struct ApiCtx {
    /// The process-wide analysis cache shared by all requests.
    pub cache: SharedAnalysisCache,
    /// Root of every per-request child token. Detached (it must ignore
    /// the interrupt flag: a drain lets in-flight requests finish);
    /// cancelled only when a forced drain gives up on the drain deadline.
    pub request_root: CancelToken,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// Flips to `false` when the drain starts (`/readyz` → 503).
    pub ready: AtomicBool,
    /// Gate for `POST /v1/panic` (tests and the ci smoke only).
    pub test_endpoints: bool,
    /// Serve-plane counters and histograms.
    pub metrics: ServeMetrics,
    /// Daemon start time; `/metrics` derives the uptime gauge from it.
    pub started: Instant,
    /// Upper bound on the `threads` a single `/v1/dse` request may claim
    /// (already resolved: `--max-request-threads`, or the host's
    /// available parallelism when the flag is 0/absent).
    pub max_request_threads: usize,
    /// The dequeue-side CoDel controller; its dropping state is also an
    /// overload-pressure signal for brownout decisions.
    pub admission: Arc<AdmissionCtl>,
    /// Worker liveness table: `/readyz` quorum and the watchdog share it.
    pub workers: Arc<WorkerTable>,
    /// Live mirror of this daemon's queue depth. A mirror rather than
    /// the `maestro.serve.queue_depth` gauge because the metrics
    /// registry is process-global: two daemons in one test process must
    /// not read each other's pressure.
    pub queue_len: Arc<AtomicUsize>,
    /// The queue's capacity (pressure = depth / capacity).
    pub queue_cap: usize,
    /// Drain deadline in seconds — the ceiling for `Retry-After` hints
    /// (past it, a draining daemon is gone and the hint is a lie).
    pub drain_secs: u64,
}

/// Request priority class: what overload shedding may touch, and in what
/// order. Control-plane probes are never shed (an operator debugging an
/// overload needs `/metrics` most exactly when the daemon is drowning);
/// long-running exploration is shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// health/readiness/metrics/traces — and anything unroutable, which
    /// costs less to answer (404) than to classify further.
    Critical,
    /// `/v1/analyze`, `/v1/batch`: interactive cost-model queries.
    Normal,
    /// `/v1/dse`, `/v1/conform`: multi-second exploration sessions.
    Heavy,
}

/// Classify a parsed request (see [`ReqClass`]).
pub fn classify(req: &Request) -> ReqClass {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/analyze" | "/v1/batch") => ReqClass::Normal,
        ("POST", "/v1/dse" | "/v1/conform") => ReqClass::Heavy,
        _ => ReqClass::Critical,
    }
}

/// Instantaneous overload pressure, derived from this daemon's queue
/// depth and the admission controller's dropping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// Queue mostly empty; serve everything.
    Nominal,
    /// Standing queue (≥ half capacity, or CoDel is dropping): shed
    /// [`ReqClass::Heavy`] work.
    High,
    /// Near queue-full (≥ 90% capacity): also shed batches and serve
    /// analyze from cache only (brownout).
    Critical,
}

impl ApiCtx {
    /// Route and serve one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/metrics") => {
                self.metrics
                    .uptime_seconds
                    .set(self.started.elapsed().as_secs_f64());
                Response::text(200, maestro_obs::registry().render_prometheus())
            }
            ("GET", "/debug/traces") => {
                Response::json(200, records_to_json(&FlightRecorder::global().recent()))
            }
            ("GET", path) if path.strip_prefix("/debug/traces/").is_some() => {
                let raw = path.strip_prefix("/debug/traces/").unwrap_or("");
                let Some(id) = TraceId::parse(raw) else {
                    return error_response(400, "trace id must be 1-32 hex digits");
                };
                match FlightRecorder::global().find(id) {
                    Some(rec) => Response::json(200, rec.to_json()),
                    None => error_response(404, "no such trace (evicted or sampled out)"),
                }
            }
            ("POST", "/v1/analyze") => self.with_body(req, Self::analyze),
            ("POST", "/v1/batch") => self.with_body(req, Self::batch),
            ("POST", "/v1/dse") => self.with_body(req, Self::dse),
            ("POST", "/v1/conform") => self.with_body(req, Self::conform),
            ("POST", "/v1/panic") if self.test_endpoints => {
                panic!("test endpoint /v1/panic: deliberate handler panic")
            }
            ("POST", "/v1/stall") if self.test_endpoints => {
                // Simulates a wedged handler: a raw sleep that (unlike a
                // deadline-aware analysis) never polls its token, so the
                // worker's heartbeat goes stale and the watchdog's wedge
                // detection has something real to find.
                let ms = std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(|t| json::parse(t).ok())
                    .and_then(|b| b.get("ms").and_then(Value::as_u64))
                    .unwrap_or(0)
                    .min(10_000);
                std::thread::sleep(Duration::from_millis(ms));
                Response::json(200, format!("{{\"stalled_ms\":{ms}}}"))
            }
            (
                _,
                "/healthz" | "/readyz" | "/metrics" | "/v1/analyze" | "/v1/batch" | "/v1/dse"
                | "/v1/conform",
            ) => error_response(405, "method not allowed for this path"),
            (_, path) if path.starts_with("/debug/traces") => {
                error_response(405, "method not allowed for this path")
            }
            _ => error_response(404, "no such endpoint"),
        }
    }

    /// Readiness: drain state first, then worker quorum. The JSON body
    /// names the cause, so an orchestrator (or a human) can tell "this
    /// daemon is leaving" from "this daemon lost its workers".
    fn readyz(&self) -> Response {
        if !self.ready.load(Ordering::Relaxed) {
            return Response::json(503, "{\"ready\":false,\"cause\":\"draining\"}".to_string());
        }
        let live = self.workers.live();
        let (quorum, configured) = (self.workers.quorum, self.workers.configured);
        if live < quorum {
            return Response::json(
                503,
                format!(
                    "{{\"ready\":false,\"cause\":\"workers below quorum\",\
                     \"live\":{live},\"quorum\":{quorum},\"workers\":{configured}}}"
                ),
            );
        }
        Response::json(
            200,
            format!(
                "{{\"ready\":true,\"live\":{live},\"quorum\":{quorum},\"workers\":{configured}}}"
            ),
        )
    }

    /// Instantaneous overload pressure (see [`Pressure`]).
    pub fn pressure(&self) -> Pressure {
        let depth = self.queue_len.load(Ordering::Relaxed);
        let cap = self.queue_cap.max(1);
        if depth * 10 >= cap * 9 {
            Pressure::Critical
        } else if depth * 2 >= cap || self.admission.dropping() {
            Pressure::High
        } else {
            Pressure::Nominal
        }
    }

    /// How long a shed client should wait before retrying: the time for
    /// the current queue (plus this request) to drain through the worker
    /// pool at the observed median service time, clamped to
    /// `[1, drain-seconds]` — beyond the drain deadline the daemon may
    /// simply be gone, so a larger promise is meaningless.
    pub fn retry_hint(&self) -> u64 {
        let hist = &self.metrics.request_seconds;
        // Before any request completes there is no observed service
        // time; assume a conservative 250ms median.
        let p50 = if hist.count() > 0 {
            let q = hist.quantile(0.5);
            if q.is_finite() && q > 0.0 {
                q
            } else {
                0.25
            }
        } else {
            0.25
        };
        retry_after_secs(
            p50,
            self.queue_len.load(Ordering::Relaxed),
            self.workers.configured,
            self.drain_secs,
        )
    }

    /// A `503` shed response carrying the computed retry hint.
    pub fn shed_response(&self, msg: &str) -> Response {
        let mut resp = error_response(503, msg);
        resp.retry_after = Some(self.retry_hint());
        resp
    }

    /// Class-based brownout shedding, decided before dispatch: under
    /// [`Pressure::High`], heavy exploration sessions are shed so the
    /// queue keeps draining interactive work; under
    /// [`Pressure::Critical`], batches are shed too (single analyzes
    /// continue into the cache-only degraded path). Critical-class
    /// requests are never shed here.
    fn preflight(&self, req: &Request) -> Option<Response> {
        let shed = match (classify(req), self.pressure()) {
            (ReqClass::Heavy, Pressure::High | Pressure::Critical) => true,
            (ReqClass::Normal, Pressure::Critical) => req.path == "/v1/batch",
            _ => false,
        };
        if !shed {
            return None;
        }
        self.metrics.brownout_shed.inc();
        Some(self.shed_response("server is under overload pressure, heavy requests are shed"))
    }

    /// Route and serve one parsed request with the socket in reach, so
    /// handlers that stream (NDJSON `/v1/dse`) can write incrementally.
    /// Everything else delegates to [`ApiCtx::handle`].
    pub fn handle_conn(&self, req: &Request, sock: &TcpStream) -> Handled {
        if let Some(resp) = self.preflight(req) {
            return Handled::Response(resp);
        }
        if req.method == "POST" && req.path == "/v1/dse" {
            let (body, token) = match self.decode_body(req) {
                Ok(decoded) => decoded,
                Err(resp) => return Handled::Response(resp),
            };
            if body.get("stream").and_then(Value::as_bool) == Some(true) {
                return self.dse_stream(&body, &token, sock);
            }
            return Handled::Response(self.dse(&body, &token));
        }
        Handled::Response(self.handle(req))
    }

    /// Decode the JSON body and derive the request token.
    fn decode_body(&self, req: &Request) -> Result<(Value, CancelToken), Response> {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return Err(error_response(400, "request body is not UTF-8")),
        };
        let body = if text.trim().is_empty() {
            Value::Obj(Vec::new())
        } else {
            match json::parse(text) {
                Ok(v) => v,
                Err(e) => return Err(error_response(400, &e.to_string())),
            }
        };
        if !matches!(body, Value::Obj(_)) {
            return Err(error_response(400, "request body must be a JSON object"));
        }
        let budget = match body.get("deadline_ms") {
            None => self.default_deadline,
            Some(v) => match v.as_u64() {
                Some(ms) => Duration::from_millis(ms).min(MAX_DEADLINE),
                None => {
                    return Err(error_response(
                        400,
                        "`deadline_ms` must be a non-negative integer",
                    ))
                }
            },
        };
        let token = self.request_root.child_with_deadline(budget);
        // Body decoded, token built: attribution shifts from parse to
        // the analysis stages.
        crate::trace::mark("analyze");
        Ok((body, token))
    }

    /// Decode the JSON body, derive the request token, dispatch.
    fn with_body(&self, req: &Request, f: fn(&Self, &Value, &CancelToken) -> Response) -> Response {
        match self.decode_body(req) {
            Ok((body, token)) => f(self, &body, &token),
            Err(resp) => resp,
        }
    }

    /// `POST /v1/analyze`.
    fn analyze(&self, body: &Value, token: &CancelToken) -> Response {
        let model = match load_model(body) {
            Ok(m) => m,
            Err(r) => return r,
        };
        let dataflow = match load_dataflow(body) {
            Ok(d) => d,
            Err(r) => return r,
        };
        let acc = match accelerator(body) {
            Ok(a) => a,
            Err(r) => return r,
        };
        // Brownout: a request whose deadline already tripped (it burned
        // its budget queued) or one arriving under critical pressure is
        // served from the report cache only. A degraded 200 from cache
        // beats a 504 the client must retry — and costs the drowning
        // daemon almost nothing.
        if token.is_cancelled() || self.pressure() == Pressure::Critical {
            return self.analyze_degraded(&model, body, &dataflow, &acc, token);
        }
        let layer_name = body.get("layer").and_then(Value::as_str).unwrap_or("");
        if !layer_name.is_empty() {
            let Some(layer) = model.layer(layer_name) else {
                return error_response(
                    400,
                    &format!("model {} has no layer `{layer_name}`", model.name),
                );
            };
            // The cancellable staged path polls the token at the stage
            // boundaries inside the engine, so a slow layer stops at the
            // next cancellation point instead of pinning the worker past
            // its 504 budget.
            return match self
                .cache
                .analyze_staged_cancellable(layer, &dataflow, &acc, token)
            {
                Ok(report) => {
                    crate::trace::mark("serialize");
                    match serde_json::to_string(&report) {
                        Ok(js) => Response::json(
                            200,
                            format!(
                                "{{\"model\":{},\"layer\":{},\"report\":{js}}}",
                                json_str(&model.name),
                                json_str(layer_name)
                            ),
                        ),
                        Err(e) => error_response(500, &e.to_string()),
                    }
                }
                Err(AnalysisError::Cancelled) => {
                    self.metrics.timeouts.inc();
                    timeout_response(0, 1, None)
                }
                Err(e) => analysis_error_response(&e),
            };
        }
        // Whole model: the per-layer loop plus the engine's in-layer
        // cancellation points bound how far a timed-out request overstays.
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.iter() {
            match self
                .cache
                .analyze_staged_cancellable(layer, &dataflow, &acc, token)
            {
                Ok(r) => layers.push(r),
                Err(AnalysisError::Cancelled) => {
                    self.metrics.timeouts.inc();
                    return timeout_response(layers.len(), model.len(), None);
                }
                Err(e) => return analysis_error_response(&e),
            }
        }
        let report = ModelReport {
            model: model.name.clone(),
            layers,
        };
        crate::trace::mark("serialize");
        match serde_json::to_string(&report) {
            Ok(js) => Response::json(200, js),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// The cache-only analyze path behind brownout. Every requested
    /// layer must already sit in the shared report tier (peeked without
    /// perturbing LRU order or hit/miss counters); any miss falls back
    /// to the honest failure — `504` if the deadline tripped, a `503`
    /// shed with a retry hint if we are merely refusing fresh work.
    fn analyze_degraded(
        &self,
        model: &Model,
        body: &Value,
        dataflow: &Dataflow,
        acc: &Accelerator,
        token: &CancelToken,
    ) -> Response {
        let layer_name = body.get("layer").and_then(Value::as_str).unwrap_or("");
        let mut resp = if layer_name.is_empty() {
            let mut layers: Vec<LayerReport> = Vec::with_capacity(model.len());
            for layer in model.iter() {
                match self.cache.peek_report(layer, dataflow, acc) {
                    Some(r) => layers.push(r),
                    None => return self.degraded_miss(layers.len(), model.len(), token),
                }
            }
            let report = ModelReport {
                model: model.name.clone(),
                layers,
            };
            crate::trace::mark("serialize");
            match serde_json::to_string(&report) {
                Ok(js) => Response::json(200, js),
                Err(e) => return error_response(500, &e.to_string()),
            }
        } else {
            let Some(layer) = model.layer(layer_name) else {
                return error_response(
                    400,
                    &format!("model {} has no layer `{layer_name}`", model.name),
                );
            };
            let Some(report) = self.cache.peek_report(layer, dataflow, acc) else {
                return self.degraded_miss(0, 1, token);
            };
            crate::trace::mark("serialize");
            match serde_json::to_string(&report) {
                Ok(js) => Response::json(
                    200,
                    format!(
                        "{{\"model\":{},\"layer\":{},\"report\":{js}}}",
                        json_str(&model.name),
                        json_str(layer_name)
                    ),
                ),
                Err(e) => return error_response(500, &e.to_string()),
            }
        };
        self.metrics.degraded.inc();
        resp.degraded = Some("cache-only");
        resp
    }

    /// The honest failure when brownout cannot serve from cache.
    fn degraded_miss(&self, completed: usize, total: usize, token: &CancelToken) -> Response {
        if token.is_cancelled() {
            self.metrics.timeouts.inc();
            timeout_response(completed, total, None)
        } else {
            self.metrics.brownout_shed.inc();
            self.shed_response("server is in brownout, uncached analyses are shed")
        }
    }

    /// Parse and validate everything a `/v1/dse` request needs before any
    /// byte is written, shared by the buffered and streaming paths.
    fn dse_setup(
        &self,
        body: &Value,
    ) -> Result<(Model, String, Style, maestro_dse::Explorer, usize), Response> {
        let model = load_model(body)?;
        let layer_name = body.get("layer").and_then(Value::as_str).unwrap_or("");
        if layer_name.is_empty() {
            return Err(error_response(400, "missing `layer`"));
        }
        if model.layer(layer_name).is_none() {
            return Err(error_response(
                400,
                &format!("model {} has no layer `{layer_name}`", model.name),
            ));
        }
        let style_name = body.get("style").and_then(Value::as_str).unwrap_or("KC-P");
        let Some(style) = find_style(style_name) else {
            return Err(error_response(
                400,
                &format!("unknown style `{style_name}`"),
            ));
        };
        let space = match body
            .get("space")
            .and_then(Value::as_str)
            .unwrap_or("standard")
        {
            "standard" => maestro_dse::SweepSpace::standard(),
            "tiny" => maestro_dse::SweepSpace::tiny(),
            other => {
                return Err(error_response(
                    400,
                    &format!("unknown space `{other}` (standard|tiny)"),
                ))
            }
        };
        let mut explorer = maestro_dse::Explorer::new(space);
        if let Some(eval) = body.get("eval").and_then(Value::as_str) {
            match eval.parse::<maestro_dse::EvalMode>() {
                Ok(mode) => explorer.eval = mode,
                Err(e) => return Err(error_response(400, &e)),
            }
        }
        // Server-side thread cap: without it, `workers × threads` scoped
        // threads from concurrent requests could oversubscribe the host.
        let threads = effective_threads(
            body.get("threads").and_then(Value::as_u64).unwrap_or(1),
            self.max_request_threads,
        );
        Ok((model, layer_name.to_string(), style, explorer, threads))
    }

    /// `POST /v1/dse` (buffered).
    fn dse(&self, body: &Value, token: &CancelToken) -> Response {
        let (model, layer_name, style, explorer, threads) = match self.dse_setup(body) {
            Ok(setup) => setup,
            Err(r) => return r,
        };
        let Some(layer) = model.layer(&layer_name) else {
            // dse_setup validated the name; unreachable in practice.
            return error_response(400, "missing `layer`");
        };
        let ctl = maestro_dse::SessionCtl {
            token: token.clone(),
            // No periodic checkpointing in the serving path: there is no
            // checkpoint file, so the time-based cadence is disabled too.
            checkpoint_every: None,
            ..Default::default()
        };
        match explorer.explore_session(
            layer,
            &maestro_dse::variants::variants(style),
            threads,
            &ctl,
        ) {
            Ok((result, session)) => {
                crate::trace::mark("serialize");
                let js = match serde_json::to_string(&result) {
                    Ok(js) => js,
                    Err(e) => return error_response(500, &e.to_string()),
                };
                if session.interrupted {
                    self.metrics.timeouts.inc();
                    timeout_response(session.completed_units, session.total_units, Some(&js))
                } else {
                    Response::json(
                        200,
                        format!(
                            "{{\"partial\":false,\"completed_units\":{},\"total_units\":{},\"result\":{js}}}",
                            session.completed_units, session.total_units
                        ),
                    )
                }
            }
            Err(maestro_dse::SessionError::Space(e)) => error_response(400, &e.to_string()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// `POST /v1/dse` with `"stream": true`: NDJSON over the socket. One
    /// line per completed unit (that unit's local Pareto frontier), then
    /// a final line (`"final":true`) with the merged result and session
    /// counters. Validation failures happen before the first byte and
    /// return a buffered error; once the head is on the wire the
    /// connection is committed to EOF framing and always closes.
    fn dse_stream(&self, body: &Value, token: &CancelToken, sock: &TcpStream) -> Handled {
        let (model, layer_name, style, explorer, threads) = match self.dse_setup(body) {
            Ok(setup) => setup,
            Err(r) => return Handled::Response(r),
        };
        let Some(layer) = model.layer(&layer_name) else {
            return Handled::Response(error_response(400, "missing `layer`"));
        };
        let cloned = match sock.try_clone() {
            Ok(s) => s,
            Err(e) => {
                return Handled::Response(error_response(
                    500,
                    &format!("cannot clone socket for streaming: {e}"),
                ))
            }
        };
        // Head first, by hand: EOF-framed (no `Content-Length`), so the
        // connection must close when the stream ends.
        let mut head = String::from(
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n",
        );
        if let Some(id) = crate::trace::active_id() {
            head.push_str(&format!("x-maestro-trace: {}\r\n", id.to_hex()));
        }
        head.push_str("\r\n");
        let sink = Arc::new(Mutex::new(StreamSink {
            sock: cloned,
            bytes: 0,
            failed: false,
        }));
        {
            let mut s = sink.lock().unwrap_or_else(|e| e.into_inner());
            if s.sock.write_all(head.as_bytes()).is_err() {
                s.failed = true;
            }
        }

        let unit_sink = Arc::clone(&sink);
        let ctl = maestro_dse::SessionCtl {
            token: token.clone(),
            checkpoint_every: None,
            on_unit: Some(Box::new(move |u: &maestro_dse::UnitUpdate<'_>| {
                let pareto = serde_json::to_string(&u.pareto).unwrap_or_else(|_| "[]".to_string());
                let line = match u.failed {
                    Some(msg) => format!(
                        "{{\"unit\":{},\"completed\":{},\"total\":{},\"failed\":{}}}",
                        u.unit,
                        u.completed,
                        u.total,
                        json_str(msg)
                    ),
                    None => format!(
                        "{{\"unit\":{},\"completed\":{},\"total\":{},\"pareto\":{pareto}}}",
                        u.unit, u.completed, u.total
                    ),
                };
                unit_sink
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .line(&line);
            })),
            ..Default::default()
        };
        let final_line = match explorer.explore_session(
            layer,
            &maestro_dse::variants::variants(style),
            threads,
            &ctl,
        ) {
            Ok((result, session)) => {
                crate::trace::mark("serialize");
                if session.interrupted {
                    self.metrics.timeouts.inc();
                }
                match serde_json::to_string(&result) {
                    Ok(js) => format!(
                        "{{\"final\":true,\"partial\":{},\"completed_units\":{},\"total_units\":{},\"result\":{js}}}",
                        session.interrupted, session.completed_units, session.total_units
                    ),
                    Err(e) => format!("{{\"final\":true,\"error\":{}}}", json_str(&e.to_string())),
                }
            }
            Err(e) => format!("{{\"final\":true,\"error\":{}}}", json_str(&e.to_string())),
        };
        let mut s = sink.lock().unwrap_or_else(|e| e.into_inner());
        s.line(&final_line);
        Handled::Streamed(StreamSummary {
            status: 200,
            bytes: s.bytes,
            write_failed: s.failed,
        })
    }

    /// `POST /v1/batch`: an array of single-layer analyze points served
    /// through one connection, one JSON parse and one shared-cache
    /// session. Items fail independently — a bad point becomes a
    /// per-item `{"error": ..}` object, never a failed batch — and the
    /// request deadline turns the remainder into a `504` carrying the
    /// results completed so far.
    fn batch(&self, body: &Value, token: &CancelToken) -> Response {
        let Some(points) = body.get("points") else {
            return error_response(400, "missing `points` (an array of analyze points)");
        };
        let Value::Arr(points) = points else {
            return error_response(400, "`points` must be an array");
        };
        if points.len() > MAX_BATCH_POINTS {
            return error_response(
                400,
                &format!(
                    "batch of {} points exceeds the {MAX_BATCH_POINTS}-point limit",
                    points.len()
                ),
            );
        }
        let mut results: Vec<String> = Vec::with_capacity(points.len());
        for point in points {
            if token.is_cancelled() {
                self.metrics.timeouts.inc();
                let partial = format!("{{\"results\":[{}]}}", results.join(","));
                return timeout_response(results.len(), points.len(), Some(&partial));
            }
            match self.batch_point(point, token) {
                Ok(item) => results.push(item),
                // Cancelled mid-point: account it as not completed.
                Err(()) => {
                    self.metrics.timeouts.inc();
                    let partial = format!("{{\"results\":[{}]}}", results.join(","));
                    return timeout_response(results.len(), points.len(), Some(&partial));
                }
            }
        }
        crate::trace::mark("serialize");
        Response::json(
            200,
            format!(
                "{{\"count\":{},\"results\":[{}]}}",
                results.len(),
                results.join(",")
            ),
        )
    }

    /// Serve one batch point. `Ok` is the item's JSON object — a report
    /// or a per-item error; `Err(())` means the request deadline tripped
    /// mid-analysis (the caller turns the whole tail into a 504).
    fn batch_point(&self, point: &Value, token: &CancelToken) -> Result<String, ()> {
        if !matches!(point, Value::Obj(_)) {
            return Ok("{\"error\":\"batch point must be a JSON object\"}".to_string());
        }
        let model = match load_model(point) {
            Ok(m) => m,
            Err(r) => return Ok(r.body),
        };
        let dataflow = match load_dataflow(point) {
            Ok(d) => d,
            Err(r) => return Ok(r.body),
        };
        let acc = match accelerator(point) {
            Ok(a) => a,
            Err(r) => return Ok(r.body),
        };
        let layer_name = point.get("layer").and_then(Value::as_str).unwrap_or("");
        if layer_name.is_empty() {
            return Ok("{\"error\":\"batch point missing `layer`\"}".to_string());
        }
        let Some(layer) = model.layer(layer_name) else {
            return Ok(format!(
                "{{\"error\":{}}}",
                json_str(&format!("model {} has no layer `{layer_name}`", model.name))
            ));
        };
        match self
            .cache
            .analyze_staged_cancellable(layer, &dataflow, &acc, token)
        {
            Ok(report) => match serde_json::to_string(&report) {
                Ok(js) => Ok(format!(
                    "{{\"model\":{},\"layer\":{},\"report\":{js}}}",
                    json_str(&model.name),
                    json_str(layer_name)
                )),
                Err(e) => Ok(format!("{{\"error\":{}}}", json_str(&e.to_string()))),
            },
            Err(AnalysisError::Cancelled) => Err(()),
            Err(e) => Ok(format!("{{\"error\":{}}}", json_str(&e.to_string()))),
        }
    }

    /// `POST /v1/conform`.
    fn conform(&self, body: &Value, token: &CancelToken) -> Response {
        let get = |key: &str, dflt: u64| -> Result<u64, Response> {
            match body.get(key) {
                None => Ok(dflt),
                Some(v) => v.as_u64().ok_or_else(|| {
                    error_response(400, &format!("`{key}` must be a non-negative integer"))
                }),
            }
        };
        let mut cfg = maestro_sim::ConformConfig::default();
        cfg.seed = match get("seed", cfg.seed) {
            Ok(v) => v,
            Err(r) => return r,
        };
        cfg.cases = match get("cases", cfg.cases) {
            Ok(v) => v,
            Err(r) => return r,
        };
        cfg.max_steps = match get("max_steps", cfg.max_steps) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let report = maestro_sim::run_conform_cancellable(&cfg, token);
        crate::trace::mark("serialize");
        let js = match serde_json::to_string(&report) {
            Ok(js) => js,
            Err(e) => return error_response(500, &e.to_string()),
        };
        if report.interrupted {
            self.metrics.timeouts.inc();
            timeout_response(report.cases as usize, cfg.cases as usize, Some(&js))
        } else {
            Response::json(200, js)
        }
    }
}

/// The `Retry-After` arithmetic behind [`ApiCtx::retry_hint`], pure so
/// it can be pinned: the time for `queued` waiting connections (plus the
/// one being shed) to drain through `workers` at the observed median
/// service time, rounded up and clamped to `[1, drain_secs]`.
pub fn retry_after_secs(p50_secs: f64, queued: usize, workers: usize, drain_secs: u64) -> u64 {
    let queued = queued as f64 + 1.0;
    let workers = workers.max(1) as f64;
    let secs = (queued * p50_secs / workers).ceil() as u64;
    secs.clamp(1, drain_secs.max(1))
}

/// `{"error": <msg>}` with the given status.
pub fn error_response(status: u16, msg: &str) -> Response {
    let mut r = Response::json(status, format!("{{\"error\":{}}}", json_str(msg)));
    // Client-fault statuses close the connection: the parser state after
    // a rejected request is untrustworthy.
    r.close = status == 400 || status == 408 || status == 413;
    r
}

/// The typed `504` carrying the partial-result marker.
fn timeout_response(completed: usize, total: usize, partial_result: Option<&str>) -> Response {
    let result = match partial_result {
        Some(js) => format!(",\"result\":{js}"),
        None => String::new(),
    };
    Response::json(
        504,
        format!(
            "{{\"error\":\"deadline exceeded\",\"partial\":true,\
             \"completed_units\":{completed},\"total_units\":{total}{result}}}"
        ),
    )
}

fn analysis_error_response(e: &AnalysisError) -> Response {
    match e {
        // The client's configuration cannot be analyzed: their fault.
        AnalysisError::Layer(_) | AnalysisError::Resolve(_) => error_response(400, &e.to_string()),
        AnalysisError::Cancelled => timeout_response(0, 1, None),
        _ => error_response(500, &e.to_string()),
    }
}

fn load_model(body: &Value) -> Result<Model, Response> {
    let name = body.get("model").and_then(Value::as_str).unwrap_or("vgg16");
    zoo::by_name(name, 1).ok_or_else(|| {
        error_response(
            400,
            &format!("unknown zoo model `{name}` (the daemon serves zoo models only)"),
        )
    })
}

fn load_dataflow(body: &Value) -> Result<Dataflow, Response> {
    let spec = body
        .get("dataflow")
        .and_then(Value::as_str)
        .unwrap_or("KC-P");
    find_style(spec)
        .map(|s| s.dataflow())
        .ok_or_else(|| error_response(400, &format!("unknown dataflow style `{spec}`")))
}

fn find_style(spec: &str) -> Option<Style> {
    Style::ALL
        .into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(spec) || s.alias().eq_ignore_ascii_case(spec))
}

fn accelerator(body: &Value) -> Result<Accelerator, Response> {
    let get = |key: &str, dflt: u64| match body.get(key) {
        None => Ok(dflt),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| error_response(400, &format!("`{key}` must be a non-negative integer"))),
    };
    let pes = get("pes", 256)?;
    let bw = get("bw", 32)?;
    let l1 = get("l1", 2048)?;
    let l2 = get("l2", 1 << 20)?;
    Ok(Accelerator::builder(pes)
        .noc_bandwidth(bw)
        .l1_bytes(l1)
        .l2_bytes(l2)
        .build())
}

/// JSON-escape a string (delegates to the serde shim's writer).
fn json_str(s: &str) -> String {
    let mut w = serde::JsonWriter::new(false);
    w.write_str(s);
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Regression: `/v1/dse` used to clamp `threads` only to a hardwired
    // 64 — a handful of concurrent requests could claim hundreds of
    // scoped threads. The cap is now server-side configuration.
    #[test]
    fn effective_threads_clamps_to_the_server_cap() {
        assert_eq!(
            effective_threads(0, 8),
            1,
            "absent/zero runs single-threaded"
        );
        assert_eq!(effective_threads(1, 8), 1);
        assert_eq!(effective_threads(4, 8), 4);
        assert_eq!(
            effective_threads(u64::MAX, 8),
            8,
            "no request exceeds the cap"
        );
        assert_eq!(effective_threads(1_000_000, 2), 2);
        assert_eq!(
            effective_threads(5, 0),
            1,
            "a zero cap still serves one thread"
        );
    }

    // Satellite: the shed path's `Retry-After` is computed from queue
    // depth and the observed median service time, clamped to
    // `[1, drain-seconds]` — never the old hard-coded 1.
    #[test]
    fn retry_after_is_drain_time_clamped_to_the_drain_deadline() {
        // Empty queue, fast service: floor of 1 second.
        assert_eq!(retry_after_secs(0.01, 0, 4, 5), 1);
        // 8 queued at ~1s median through 4 workers: ceil(9/4) = 3.
        assert_eq!(retry_after_secs(1.0, 8, 4, 5), 3);
        // A deep queue of slow requests hits the drain-deadline ceiling.
        assert_eq!(retry_after_secs(2.0, 63, 2, 5), 5);
        // Degenerate inputs stay in range.
        assert_eq!(retry_after_secs(0.25, 0, 0, 0), 1);
        assert_eq!(retry_after_secs(1000.0, 1000, 1, 30), 30);
    }

    #[test]
    fn request_classes_cover_the_route_table() {
        let req = |method: &str, path: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            body: Vec::new(),
            close: false,
        };
        for path in ["/healthz", "/readyz", "/metrics", "/debug/traces"] {
            assert_eq!(classify(&req("GET", path)), ReqClass::Critical, "{path}");
        }
        assert_eq!(classify(&req("POST", "/v1/analyze")), ReqClass::Normal);
        assert_eq!(classify(&req("POST", "/v1/batch")), ReqClass::Normal);
        assert_eq!(classify(&req("POST", "/v1/dse")), ReqClass::Heavy);
        assert_eq!(classify(&req("POST", "/v1/conform")), ReqClass::Heavy);
        // Unroutable requests are answered (404) rather than shed.
        assert_eq!(classify(&req("GET", "/nope")), ReqClass::Critical);
    }
}

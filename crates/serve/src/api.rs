//! Request routing and the analyze / dse / conform endpoint handlers.
//!
//! Endpoints (see the README "Serving" section for the JSON schemas):
//!
//! * `GET /healthz` — liveness: `200` while the process runs.
//! * `GET /readyz` — readiness: `200` while accepting, `503` once a
//!   drain has started.
//! * `GET /metrics` — the process-global Prometheus exposition.
//! * `POST /v1/analyze` — one cost-model evaluation (layer or whole
//!   model), served through the shared analysis cache.
//! * `POST /v1/dse` — a bounded design-space exploration session.
//! * `POST /v1/conform` — a conformance sweep against the simulator.
//! * `POST /v1/panic` — test-only (off by default): panics in the
//!   handler, to exercise worker panic isolation.
//!
//! Every `/v1` request runs under a child [`CancelToken`] carrying the
//! request deadline (`deadline_ms` in the body, else the server default).
//! A tripped deadline yields `504` with `"partial": true` and whatever
//! partial result the engine produced; the token is a *child*, so the
//! timeout can never cancel the server or a sibling request.
//!
//! Model references resolve through [`maestro_dnn::zoo`] *only* — a
//! network-facing daemon must not read arbitrary filesystem paths on
//! behalf of its clients.

use crate::http::{Request, Response};
use crate::json::{self, Value};
use crate::server::ServeMetrics;
use maestro_core::{AnalysisError, ModelReport, SharedAnalysisCache};
use maestro_dnn::{zoo, Model};
use maestro_hw::Accelerator;
use maestro_ir::{Dataflow, Style};
use maestro_obs::trace::{records_to_json, FlightRecorder, TraceId};
use maestro_obs::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Deadlines are clamped to this ceiling; an absent or absurd
/// `deadline_ms` cannot pin a worker for hours.
const MAX_DEADLINE: Duration = Duration::from_secs(3600);

/// Shared, immutable context every worker thread serves requests from.
pub struct ApiCtx {
    /// The process-wide analysis cache shared by all requests.
    pub cache: SharedAnalysisCache,
    /// Root of every per-request child token. Detached (it must ignore
    /// the interrupt flag: a drain lets in-flight requests finish);
    /// cancelled only when a forced drain gives up on the drain deadline.
    pub request_root: CancelToken,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// Flips to `false` when the drain starts (`/readyz` → 503).
    pub ready: AtomicBool,
    /// Gate for `POST /v1/panic` (tests and the ci smoke only).
    pub test_endpoints: bool,
    /// Serve-plane counters and histograms.
    pub metrics: ServeMetrics,
    /// Daemon start time; `/metrics` derives the uptime gauge from it.
    pub started: Instant,
}

impl ApiCtx {
    /// Route and serve one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/readyz") => {
                if self.ready.load(Ordering::Relaxed) {
                    Response::text(200, "ready\n")
                } else {
                    Response::text(503, "draining\n")
                }
            }
            ("GET", "/metrics") => {
                self.metrics
                    .uptime_seconds
                    .set(self.started.elapsed().as_secs_f64());
                Response::text(200, maestro_obs::registry().render_prometheus())
            }
            ("GET", "/debug/traces") => {
                Response::json(200, records_to_json(&FlightRecorder::global().recent()))
            }
            ("GET", path) if path.strip_prefix("/debug/traces/").is_some() => {
                let raw = path.strip_prefix("/debug/traces/").unwrap_or("");
                let Some(id) = TraceId::parse(raw) else {
                    return error_response(400, "trace id must be 1-32 hex digits");
                };
                match FlightRecorder::global().find(id) {
                    Some(rec) => Response::json(200, rec.to_json()),
                    None => error_response(404, "no such trace (evicted or sampled out)"),
                }
            }
            ("POST", "/v1/analyze") => self.with_body(req, Self::analyze),
            ("POST", "/v1/dse") => self.with_body(req, Self::dse),
            ("POST", "/v1/conform") => self.with_body(req, Self::conform),
            ("POST", "/v1/panic") if self.test_endpoints => {
                panic!("test endpoint /v1/panic: deliberate handler panic")
            }
            (
                _,
                "/healthz" | "/readyz" | "/metrics" | "/v1/analyze" | "/v1/dse" | "/v1/conform",
            ) => error_response(405, "method not allowed for this path"),
            (_, path) if path.starts_with("/debug/traces") => {
                error_response(405, "method not allowed for this path")
            }
            _ => error_response(404, "no such endpoint"),
        }
    }

    /// Decode the JSON body, derive the request token, dispatch.
    fn with_body(&self, req: &Request, f: fn(&Self, &Value, &CancelToken) -> Response) -> Response {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(_) => return error_response(400, "request body is not UTF-8"),
        };
        let body = if text.trim().is_empty() {
            Value::Obj(Vec::new())
        } else {
            match json::parse(text) {
                Ok(v) => v,
                Err(e) => return error_response(400, &e.to_string()),
            }
        };
        if !matches!(body, Value::Obj(_)) {
            return error_response(400, "request body must be a JSON object");
        }
        let budget = match body.get("deadline_ms") {
            None => self.default_deadline,
            Some(v) => match v.as_u64() {
                Some(ms) => Duration::from_millis(ms).min(MAX_DEADLINE),
                None => return error_response(400, "`deadline_ms` must be a non-negative integer"),
            },
        };
        let token = self.request_root.child_with_deadline(budget);
        // Body decoded, token built: attribution shifts from parse to
        // the analysis stages.
        crate::trace::mark("analyze");
        f(self, &body, &token)
    }

    /// `POST /v1/analyze`.
    fn analyze(&self, body: &Value, token: &CancelToken) -> Response {
        let model = match load_model(body) {
            Ok(m) => m,
            Err(r) => return r,
        };
        let dataflow = match load_dataflow(body) {
            Ok(d) => d,
            Err(r) => return r,
        };
        let acc = match accelerator(body) {
            Ok(a) => a,
            Err(r) => return r,
        };
        let layer_name = body.get("layer").and_then(Value::as_str).unwrap_or("");
        if !layer_name.is_empty() {
            let Some(layer) = model.layer(layer_name) else {
                return error_response(
                    400,
                    &format!("model {} has no layer `{layer_name}`", model.name),
                );
            };
            if token.is_cancelled() {
                self.metrics.timeouts.inc();
                return timeout_response(0, 1, None);
            }
            return match self.cache.analyze_staged(layer, &dataflow, &acc) {
                Ok(report) => {
                    crate::trace::mark("serialize");
                    match serde_json::to_string(&report) {
                        Ok(js) => Response::json(
                            200,
                            format!(
                                "{{\"model\":{},\"layer\":{},\"report\":{js}}}",
                                json_str(&model.name),
                                json_str(layer_name)
                            ),
                        ),
                        Err(e) => error_response(500, &e.to_string()),
                    }
                }
                Err(e) => analysis_error_response(&e),
            };
        }
        // Whole model: poll the token per layer so a timed-out request
        // overstays by at most one layer's analysis.
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.iter() {
            if token.is_cancelled() {
                self.metrics.timeouts.inc();
                return timeout_response(layers.len(), model.len(), None);
            }
            match self.cache.analyze_staged(layer, &dataflow, &acc) {
                Ok(r) => layers.push(r),
                Err(e) => return analysis_error_response(&e),
            }
        }
        let report = ModelReport {
            model: model.name.clone(),
            layers,
        };
        crate::trace::mark("serialize");
        match serde_json::to_string(&report) {
            Ok(js) => Response::json(200, js),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// `POST /v1/dse`.
    fn dse(&self, body: &Value, token: &CancelToken) -> Response {
        let model = match load_model(body) {
            Ok(m) => m,
            Err(r) => return r,
        };
        let layer_name = body.get("layer").and_then(Value::as_str).unwrap_or("");
        if layer_name.is_empty() {
            return error_response(400, "missing `layer`");
        }
        let Some(layer) = model.layer(layer_name) else {
            return error_response(
                400,
                &format!("model {} has no layer `{layer_name}`", model.name),
            );
        };
        let style_name = body.get("style").and_then(Value::as_str).unwrap_or("KC-P");
        let Some(style) = find_style(style_name) else {
            return error_response(400, &format!("unknown style `{style_name}`"));
        };
        let space = match body
            .get("space")
            .and_then(Value::as_str)
            .unwrap_or("standard")
        {
            "standard" => maestro_dse::SweepSpace::standard(),
            "tiny" => maestro_dse::SweepSpace::tiny(),
            other => {
                return error_response(400, &format!("unknown space `{other}` (standard|tiny)"))
            }
        };
        let mut explorer = maestro_dse::Explorer::new(space);
        if let Some(eval) = body.get("eval").and_then(Value::as_str) {
            match eval.parse::<maestro_dse::EvalMode>() {
                Ok(mode) => explorer.eval = mode,
                Err(e) => return error_response(400, &e),
            }
        }
        let threads = body
            .get("threads")
            .and_then(Value::as_u64)
            .map(|t| t.min(64) as usize)
            .unwrap_or(1);
        let ctl = maestro_dse::SessionCtl {
            token: token.clone(),
            // No periodic checkpointing in the serving path: there is no
            // checkpoint file, so the time-based cadence is disabled too.
            checkpoint_every: None,
            ..Default::default()
        };
        match explorer.explore_session(
            layer,
            &maestro_dse::variants::variants(style),
            threads,
            &ctl,
        ) {
            Ok((result, session)) => {
                crate::trace::mark("serialize");
                let js = match serde_json::to_string(&result) {
                    Ok(js) => js,
                    Err(e) => return error_response(500, &e.to_string()),
                };
                if session.interrupted {
                    self.metrics.timeouts.inc();
                    timeout_response(session.completed_units, session.total_units, Some(&js))
                } else {
                    Response::json(
                        200,
                        format!(
                            "{{\"partial\":false,\"completed_units\":{},\"total_units\":{},\"result\":{js}}}",
                            session.completed_units, session.total_units
                        ),
                    )
                }
            }
            Err(maestro_dse::SessionError::Space(e)) => error_response(400, &e.to_string()),
            Err(e) => error_response(500, &e.to_string()),
        }
    }

    /// `POST /v1/conform`.
    fn conform(&self, body: &Value, token: &CancelToken) -> Response {
        let get = |key: &str, dflt: u64| -> Result<u64, Response> {
            match body.get(key) {
                None => Ok(dflt),
                Some(v) => v.as_u64().ok_or_else(|| {
                    error_response(400, &format!("`{key}` must be a non-negative integer"))
                }),
            }
        };
        let mut cfg = maestro_sim::ConformConfig::default();
        cfg.seed = match get("seed", cfg.seed) {
            Ok(v) => v,
            Err(r) => return r,
        };
        cfg.cases = match get("cases", cfg.cases) {
            Ok(v) => v,
            Err(r) => return r,
        };
        cfg.max_steps = match get("max_steps", cfg.max_steps) {
            Ok(v) => v,
            Err(r) => return r,
        };
        let report = maestro_sim::run_conform_cancellable(&cfg, token);
        crate::trace::mark("serialize");
        let js = match serde_json::to_string(&report) {
            Ok(js) => js,
            Err(e) => return error_response(500, &e.to_string()),
        };
        if report.interrupted {
            self.metrics.timeouts.inc();
            timeout_response(report.cases as usize, cfg.cases as usize, Some(&js))
        } else {
            Response::json(200, js)
        }
    }
}

/// `{"error": <msg>}` with the given status.
pub fn error_response(status: u16, msg: &str) -> Response {
    let mut r = Response::json(status, format!("{{\"error\":{}}}", json_str(msg)));
    // Client-fault statuses close the connection: the parser state after
    // a rejected request is untrustworthy.
    r.close = status == 400 || status == 408 || status == 413;
    r
}

/// The typed `504` carrying the partial-result marker.
fn timeout_response(completed: usize, total: usize, partial_result: Option<&str>) -> Response {
    let result = match partial_result {
        Some(js) => format!(",\"result\":{js}"),
        None => String::new(),
    };
    Response::json(
        504,
        format!(
            "{{\"error\":\"deadline exceeded\",\"partial\":true,\
             \"completed_units\":{completed},\"total_units\":{total}{result}}}"
        ),
    )
}

fn analysis_error_response(e: &AnalysisError) -> Response {
    match e {
        // The client's configuration cannot be analyzed: their fault.
        AnalysisError::Layer(_) | AnalysisError::Resolve(_) => error_response(400, &e.to_string()),
        AnalysisError::Cancelled => timeout_response(0, 1, None),
        _ => error_response(500, &e.to_string()),
    }
}

fn load_model(body: &Value) -> Result<Model, Response> {
    let name = body.get("model").and_then(Value::as_str).unwrap_or("vgg16");
    zoo::by_name(name, 1).ok_or_else(|| {
        error_response(
            400,
            &format!("unknown zoo model `{name}` (the daemon serves zoo models only)"),
        )
    })
}

fn load_dataflow(body: &Value) -> Result<Dataflow, Response> {
    let spec = body
        .get("dataflow")
        .and_then(Value::as_str)
        .unwrap_or("KC-P");
    find_style(spec)
        .map(|s| s.dataflow())
        .ok_or_else(|| error_response(400, &format!("unknown dataflow style `{spec}`")))
}

fn find_style(spec: &str) -> Option<Style> {
    Style::ALL
        .into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(spec) || s.alias().eq_ignore_ascii_case(spec))
}

fn accelerator(body: &Value) -> Result<Accelerator, Response> {
    let get = |key: &str, dflt: u64| match body.get(key) {
        None => Ok(dflt),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| error_response(400, &format!("`{key}` must be a non-negative integer"))),
    };
    let pes = get("pes", 256)?;
    let bw = get("bw", 32)?;
    let l1 = get("l1", 2048)?;
    let l2 = get("l2", 1 << 20)?;
    Ok(Accelerator::builder(pes)
        .noc_bandwidth(bw)
        .l1_bytes(l1)
        .l2_bytes(l2)
        .build())
}

/// JSON-escape a string (delegates to the serde shim's writer).
fn json_str(s: &str) -> String {
    let mut w = serde::JsonWriter::new(false);
    w.write_str(s);
    w.into_string()
}

//! Deterministic fault injection for the serve plane (`serve --chaos`).
//!
//! The same splitmix64 discipline as the DSE's `--inject` plan
//! (`maestro_dse::fault`): whether a given injection site fires is a pure
//! function of `(seed, kind, sequence#)`, where the sequence number is a
//! per-kind atomic counter. Nothing else — not timing, not thread
//! identity — feeds the draw, so a chaos run against a fixed request
//! count hits a fixed set of sites and ci.sh can assert the serve-plane
//! invariants (no dropped responses, drain contract intact, worker
//! restarts observed) reproducibly instead of hoping a random fault
//! landed.
//!
//! Five fault kinds, each placed so that the daemon's promises survive
//! it (an injected fault must degrade service, never corrupt it):
//!
//! * **read-err** — the connection is torn down before any request byte
//!   is read; the client sees a reset with zero response bytes (a clean,
//!   retryable refusal — never a truncated response).
//! * **write-err** — the response write is skipped (simulating a peer
//!   that vanished); only ever injected before the *first* response byte
//!   of a connection, so the client observes a refusal, not a torn body.
//!   Counted in `maestro.serve.write_failures` like a real failed write.
//! * **write-delay** — the response write is delayed, exercising client
//!   timeout handling and the drain's straggler path.
//! * **worker-panic** — a worker thread panics at the top of its loop,
//!   *before* popping a connection (so no admitted connection is ever
//!   lost), exercising the watchdog's detect-and-respawn path.
//! * **stall** — the handler sleeps before dispatch, driving queue
//!   sojourn up and exercising the CoDel shed and deadline paths.
//!
//! Spec grammar mirrors `--inject`:
//! `read-err:0.01,write-err:0.01,write-delay:20ms:0.05,worker-panic:0.005,stall:10ms:0.02`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A malformed `--chaos` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpecError {
    /// The offending clause.
    pub clause: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad chaos clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for ChaosSpecError {}

/// Indexes into the per-kind sequence counters (also the kind tag mixed
/// into the draw, so two kinds at the same sequence number decorrelate).
const KIND_READ_ERR: usize = 0;
const KIND_WRITE_ERR: usize = 1;
const KIND_WRITE_DELAY: usize = 2;
const KIND_WORKER_PANIC: usize = 3;
const KIND_STALL: usize = 4;
const KINDS: usize = 5;

/// A seeded, deterministic serve-plane fault plan. See the module docs.
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    read_err: f64,
    write_err: f64,
    write_delay: Option<(Duration, f64)>,
    worker_panic: f64,
    stall: Option<(Duration, f64)>,
    seq: [AtomicU64; KINDS],
}

impl ChaosPlan {
    /// Parse a spec like
    /// `read-err:0.01,write-delay:20ms:0.05,worker-panic:0.005`.
    /// Durations accept `ms`, `s` or bare milliseconds; rates are in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosSpecError`] naming the first malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<ChaosPlan, ChaosSpecError> {
        let err = |clause: &str, reason: &str| ChaosSpecError {
            clause: clause.to_string(),
            reason: reason.to_string(),
        };
        let rate_of = |clause: &str, text: &str| -> Result<f64, ChaosSpecError> {
            let rate: f64 = text
                .parse()
                .map_err(|_| err(clause, "rate must be a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(err(clause, "rate must be in [0, 1]"));
            }
            Ok(rate)
        };
        let mut plan = ChaosPlan::empty(seed);
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let kind = parts.next().unwrap_or("");
            match kind {
                "read-err" | "write-err" | "worker-panic" => {
                    let rate = rate_of(clause, parts.next().unwrap_or(""))?;
                    if parts.next().is_some() {
                        return Err(err(clause, "expected `kind:rate`"));
                    }
                    match kind {
                        "read-err" => plan.read_err = rate,
                        "write-err" => plan.write_err = rate,
                        _ => plan.worker_panic = rate,
                    }
                }
                "write-delay" | "stall" => {
                    let duration = parse_duration(clause, parts.next().unwrap_or(""))?;
                    let rate = rate_of(clause, parts.next().unwrap_or(""))?;
                    if parts.next().is_some() {
                        return Err(err(clause, "expected `kind:duration:rate`"));
                    }
                    if kind == "write-delay" {
                        plan.write_delay = Some((duration, rate));
                    } else {
                        plan.stall = Some((duration, rate));
                    }
                }
                other => {
                    return Err(err(
                        clause,
                        &format!(
                            "unknown kind `{other}` \
                             (read-err|write-err|write-delay|worker-panic|stall)"
                        ),
                    ))
                }
            }
        }
        Ok(plan)
    }

    fn empty(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            read_err: 0.0,
            write_err: 0.0,
            write_delay: None,
            worker_panic: 0.0,
            stall: None,
            seq: Default::default(),
        }
    }

    /// One deterministic draw in `[0, 1)` for `kind` at its next
    /// sequence number (splitmix64-style finalizer, as in
    /// `maestro_dse::fault`).
    fn draw(&self, kind: usize) -> f64 {
        let n = self.seq[kind].fetch_add(1, Ordering::Relaxed);
        let mut z = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((kind as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(n.wrapping_mul(0x2545_f491_4f6c_dd1d));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Tear this connection down before reading any request byte?
    pub fn read_error(&self) -> bool {
        self.read_err > 0.0 && self.draw(KIND_READ_ERR) < self.read_err
    }

    /// Skip this (first-of-connection) response write?
    pub fn write_error(&self) -> bool {
        self.write_err > 0.0 && self.draw(KIND_WRITE_ERR) < self.write_err
    }

    /// Delay before writing this response.
    pub fn write_delay(&self) -> Option<Duration> {
        let (d, rate) = self.write_delay?;
        (rate > 0.0 && self.draw(KIND_WRITE_DELAY) < rate).then_some(d)
    }

    /// Panic this worker thread (drawn at the loop top, before any
    /// connection is popped)?
    pub fn worker_panic(&self) -> bool {
        self.worker_panic > 0.0 && self.draw(KIND_WORKER_PANIC) < self.worker_panic
    }

    /// Stall the handler before dispatching this request.
    pub fn stall(&self) -> Option<Duration> {
        let (d, rate) = self.stall?;
        (rate > 0.0 && self.draw(KIND_STALL) < rate).then_some(d)
    }
}

/// `50ms`, `2s`, or bare milliseconds.
fn parse_duration(clause: &str, text: &str) -> Result<Duration, ChaosSpecError> {
    let err = |reason: &str| ChaosSpecError {
        clause: clause.to_string(),
        reason: reason.to_string(),
    };
    let (digits, scale_ms) = if let Some(d) = text.strip_suffix("ms") {
        (d, 1.0)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1000.0)
    } else {
        (text, 1.0)
    };
    let v: f64 = digits
        .parse()
        .map_err(|_| err("duration must be like `50ms` or `2s`"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(err("duration must be non-negative and finite"));
    }
    Ok(Duration::from_secs_f64(v * scale_ms / 1000.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p = ChaosPlan::parse(
            "read-err:0.25,write-err:0.1,write-delay:20ms:0.5,worker-panic:1.0,stall:1s:0.0",
            7,
        )
        .unwrap();
        assert_eq!(p.read_err, 0.25);
        assert_eq!(p.write_err, 0.1);
        assert_eq!(p.write_delay, Some((Duration::from_millis(20), 0.5)));
        assert_eq!(p.worker_panic, 1.0);
        assert_eq!(p.stall, Some((Duration::from_secs(1), 0.0)));
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "explode:0.1",
            "read-err:nan-ish",
            "read-err:1.5",
            "write-delay:20ms",
            "write-delay:xx:0.1",
            "read-err:0.1:extra",
        ] {
            assert!(ChaosPlan::parse(bad, 0).is_err(), "{bad} must be rejected");
        }
        // An empty spec is a no-op plan, not an error.
        let p = ChaosPlan::parse("", 0).unwrap();
        assert!(!p.read_error() && !p.worker_panic());
    }

    #[test]
    fn draws_are_deterministic_in_the_sequence_number() {
        let a = ChaosPlan::parse("worker-panic:0.5", 42).unwrap();
        let b = ChaosPlan::parse("worker-panic:0.5", 42).unwrap();
        let hits_a: Vec<bool> = (0..256).map(|_| a.worker_panic()).collect();
        let hits_b: Vec<bool> = (0..256).map(|_| b.worker_panic()).collect();
        assert_eq!(hits_a, hits_b, "same seed, same sequence, same hits");
        assert!(hits_a.iter().any(|&h| h), "rate 0.5 over 256 draws hits");
        assert!(hits_a.iter().any(|&h| !h), "rate 0.5 over 256 draws misses");

        let c = ChaosPlan::parse("worker-panic:0.5", 43).unwrap();
        let hits_c: Vec<bool> = (0..256).map(|_| c.worker_panic()).collect();
        assert_ne!(hits_a, hits_c, "a different seed reshuffles the hits");
    }

    #[test]
    fn kinds_decorrelate_at_equal_sequence_numbers() {
        let p = ChaosPlan::parse("read-err:0.5,write-err:0.5", 9).unwrap();
        let reads: Vec<bool> = (0..128).map(|_| p.read_error()).collect();
        let q = ChaosPlan::parse("read-err:0.5,write-err:0.5", 9).unwrap();
        let writes: Vec<bool> = (0..128).map(|_| q.write_error()).collect();
        assert_ne!(reads, writes, "kind tag must decorrelate the draws");
    }

    #[test]
    fn zero_rates_never_fire_and_never_burn_sequence_numbers() {
        let p = ChaosPlan::parse("write-delay:10ms:0.0", 1).unwrap();
        for _ in 0..64 {
            assert_eq!(p.write_delay(), None);
            assert!(!p.read_error());
            assert!(!p.worker_panic());
            assert_eq!(p.stall(), None);
        }
        // Disabled kinds short-circuit before drawing, so enabling a kind
        // later in a config change does not shift other kinds' sequences.
        assert_eq!(p.seq[KIND_READ_ERR].load(Ordering::Relaxed), 0);
        assert_eq!(p.seq[KIND_WORKER_PANIC].load(Ordering::Relaxed), 0);
    }
}

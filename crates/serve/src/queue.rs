//! A bounded MPMC queue — the daemon's admission-control point.
//!
//! The acceptor thread [`BoundedQueue::try_push`]es accepted connections;
//! worker threads block in [`BoundedQueue::pop`]. The queue never blocks
//! the producer: when it is full, `try_push` hands the connection back so
//! the acceptor can shed it with an immediate `503` instead of queueing
//! unbounded work (which is how a daemon turns an overload into a latency
//! collapse). [`BoundedQueue::close`] starts the drain: producers are
//! refused, but consumers keep draining already-admitted items — an
//! accepted connection is a promise, so a drain never drops one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// See the module docs.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    cap: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` queued items (minimum 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                cap: cap.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoning panic can only come from a crashed producer or
        // consumer mid-push/pop; the VecDeque itself is still sound.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit `item`, or hand it back when the queue is full or closed
    /// (the caller sheds it).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        if s.closed || s.items.len() >= s.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is empty and open.
    /// Returns `None` only once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: refuse new items, wake all blocked consumers.
    /// Queued items remain poppable (drain semantics).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop");
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give one item to one consumer, then close; the other two must
        // wake with None rather than hang.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).ok();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }
}

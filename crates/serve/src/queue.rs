//! A bounded MPMC queue — the daemon's admission-control point.
//!
//! The acceptor thread [`BoundedQueue::try_push`]es accepted connections;
//! worker threads block in [`BoundedQueue::pop`]. The queue never blocks
//! the producer: when it is full, `try_push` hands the connection back so
//! the acceptor can shed it with an immediate `503` instead of queueing
//! unbounded work (which is how a daemon turns an overload into a latency
//! collapse). [`BoundedQueue::close`] starts the drain: producers are
//! refused, but consumers keep draining already-admitted items — an
//! accepted connection is a promise, so a drain never drops one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// See the module docs.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    cap: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` queued items (minimum 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                cap: cap.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoning panic can only come from a crashed producer or
        // consumer mid-push/pop; the VecDeque itself is still sound.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit `item`, or hand it back when the queue is full or closed
    /// (the caller sheds it).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.lock();
        if s.closed || s.items.len() >= s.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is empty and open.
    /// Returns `None` only once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: refuse new items, wake all blocked consumers.
    /// Queued items remain poppable (drain semantics).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// CoDel-style admission control applied at *dequeue*.
///
/// The queue-full check in [`BoundedQueue::try_push`] bounds memory, but
/// by the time an overloaded daemon pops a connection it may already have
/// sat in the queue long enough that serving it blows its deadline —
/// finishing the analyze is then pure waste that also delays everything
/// behind it. The controller watches queue *sojourn* (pop time minus
/// accept time), the one signal that directly measures standing-queue
/// badness, and sheds at dequeue using the CoDel discipline (Nichols &
/// Jacobson, CACM 2012):
///
/// * sojourn below `target` for any pop → not dropping; state resets.
/// * sojourn above `target` continuously for one `interval` → enter the
///   dropping state and shed this request.
/// * while dropping, shed again at `interval / sqrt(drop_count)` spacing
///   — pressure ramps until the standing queue collapses below target.
///
/// Deciding at dequeue (not enqueue) means the decision uses the freshest
/// possible signal, and the caller can exempt critical requests (health,
/// metrics) after parsing them — a shed here costs one already-parsed
/// connection, not an unread socket.
#[derive(Debug)]
pub struct AdmissionCtl {
    target: Duration,
    interval: Duration,
    state: Mutex<CoDelState>,
}

#[derive(Debug, Default)]
struct CoDelState {
    /// When sojourn first exceeded target (None while below).
    first_above: Option<Instant>,
    /// In the dropping state?
    dropping: bool,
    /// Drops since entering the dropping state (controls spacing).
    drop_count: u32,
    /// Next time a drop is allowed while dropping.
    drop_next: Option<Instant>,
}

impl AdmissionCtl {
    /// A controller shedding when sojourn exceeds `target`. A zero
    /// target disables sojourn shedding entirely.
    pub fn new(target: Duration) -> AdmissionCtl {
        // CoDel's interval should be on the order of a worst-case RTT;
        // for a local queue we use 2x the target, floored at 100ms so a
        // tiny target doesn't make the controller hair-triggered.
        let interval = (target * 2).max(Duration::from_millis(100));
        AdmissionCtl {
            target,
            interval,
            state: Mutex::new(CoDelState::default()),
        }
    }

    /// Is sojourn shedding enabled at all?
    pub fn enabled(&self) -> bool {
        !self.target.is_zero()
    }

    /// Is the controller currently in the dropping state (a live
    /// overload-pressure signal for brownout decisions)?
    pub fn dropping(&self) -> bool {
        self.lock().dropping
    }

    /// Feed one dequeue observation; returns `true` when this request
    /// should be shed. `now` is the pop time that `sojourn` was measured
    /// against.
    pub fn on_dequeue(&self, sojourn: Duration, now: Instant) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut s = self.lock();
        if sojourn < self.target {
            // Queue is healthy at this instant: leave the dropping state.
            *s = CoDelState::default();
            return false;
        }
        let first = *s.first_above.get_or_insert(now);
        if !s.dropping {
            // Above target, but not yet for a full interval: admit.
            if now.duration_since(first) < self.interval {
                return false;
            }
            s.dropping = true;
            // Re-entering drop state shortly after leaving it resumes at
            // elevated pressure instead of restarting from 1 (classic
            // CoDel keeps more history; decaying by 2 is a common
            // simplification that avoids tracking exit timestamps).
            s.drop_count = if s.drop_count > 2 {
                s.drop_count - 2
            } else {
                1
            };
            s.drop_next = Some(now + Self::spacing(self.interval, s.drop_count));
            return true;
        }
        match s.drop_next {
            Some(next) if now >= next => {
                s.drop_count += 1;
                s.drop_next = Some(now + Self::spacing(self.interval, s.drop_count));
                true
            }
            _ => false,
        }
    }

    /// Drop spacing `interval / sqrt(count)`.
    fn spacing(interval: Duration, count: u32) -> Duration {
        interval.div_f64(f64::from(count.max(1)).sqrt())
    }

    fn lock(&self) -> MutexGuard<'_, CoDelState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "space freed by pop");
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give one item to one consumer, then close; the other two must
        // wake with None rather than hang.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).ok();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
    }

    /// Regression: a consumer that panics while holding the state mutex
    /// poisons it; `lock()` must recover the inner state so the daemon
    /// keeps admitting and draining instead of wedging every worker and
    /// the acceptor on the first handler bug.
    #[test]
    fn poisoned_mutex_recovers_without_losing_items() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).ok();
        let poisoner = Arc::clone(&q);
        let result = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("poison the queue mutex");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(q.state.lock().is_err(), "mutex really is poisoned");

        // Every operation still works on the recovered state.
        assert_eq!(q.len(), 1);
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), None);
    }

    const MS: Duration = Duration::from_millis(1);

    /// Drive the controller with a synthetic clock: below-target pops
    /// never shed and reset the state.
    #[test]
    fn admission_below_target_never_sheds() {
        let ctl = AdmissionCtl::new(Duration::from_millis(100));
        let t0 = Instant::now();
        for i in 0..1000u32 {
            assert!(!ctl.on_dequeue(50 * MS, t0 + i * MS));
        }
        assert!(!ctl.dropping());
    }

    #[test]
    fn admission_zero_target_disables_shedding() {
        let ctl = AdmissionCtl::new(Duration::ZERO);
        assert!(!ctl.enabled());
        let t0 = Instant::now();
        assert!(!ctl.on_dequeue(Duration::from_secs(60), t0));
        assert!(!ctl.dropping());
    }

    /// Sojourn must stay above target for a full interval before the
    /// first shed; after that, shed spacing tightens as sqrt(count).
    #[test]
    fn admission_enters_dropping_after_one_interval_then_ramps() {
        let target = Duration::from_millis(100);
        let ctl = AdmissionCtl::new(target); // interval = 200ms
        let t0 = Instant::now();
        let bad = 150 * MS; // above target

        assert!(!ctl.on_dequeue(bad, t0), "first above: arm, don't shed");
        assert!(!ctl.on_dequeue(bad, t0 + 100 * MS), "interval not elapsed");
        assert!(
            ctl.on_dequeue(bad, t0 + 200 * MS),
            "one interval above: shed"
        );
        assert!(ctl.dropping());

        // Next shed only after interval/sqrt(1) = 200ms more.
        assert!(!ctl.on_dequeue(bad, t0 + 300 * MS));
        assert!(ctl.on_dequeue(bad, t0 + 400 * MS));
        // Spacing tightens: interval/sqrt(2) ~ 141ms.
        assert!(!ctl.on_dequeue(bad, t0 + 500 * MS));
        assert!(ctl.on_dequeue(bad, t0 + 542 * MS));

        // One healthy pop collapses the state entirely.
        assert!(!ctl.on_dequeue(10 * MS, t0 + 543 * MS));
        assert!(!ctl.dropping());
        assert!(
            !ctl.on_dequeue(bad, t0 + 544 * MS),
            "must re-arm from scratch"
        );
    }
}

//! A hardened HTTP/1.1 request parser and response writer.
//!
//! Incremental: [`parse_request`] is called on the connection's receive
//! buffer after every read and either yields a complete request (plus how
//! many bytes it consumed — the remainder is the next pipelined request),
//! asks for more bytes, or rejects the input with a typed error that maps
//! to exactly one status code:
//!
//! * [`HttpError::Malformed`] → `400 Bad Request` — syntax violations,
//!   unsupported transfer encodings, conflicting `Content-Length`s;
//! * [`HttpError::TooLarge`] → `413 Payload Too Large` — header section
//!   or declared body over the configured limits.
//!
//! A read timeout with a partially received request is the third
//! malformed class (slow-loris) and maps to `408 Request Timeout` — that
//! decision lives in the connection loop, which knows whether bytes were
//! pending.
//!
//! The parser never panics on any byte sequence; the property tests feed
//! it arbitrary, truncated and oversized inputs.

/// Size limits enforced during parsing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum size of the request line + headers (bytes).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length` (bytes).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + query), always starting with `/`.
    pub path: String,
    /// The request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

/// Outcome of a parse attempt over the current buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A complete request; `consumed` bytes belong to it and must be
    /// drained from the buffer (pipelined requests may follow).
    Complete {
        /// The request.
        req: Request,
        /// Bytes of the buffer consumed by this request.
        consumed: usize,
    },
    /// The buffer holds a prefix of a request; read more bytes.
    Partial,
}

/// Typed request-rejection classes (see the module docs for the status
/// mapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request → `400`.
    Malformed(&'static str),
    /// Header section or declared body over the limits → `413`.
    TooLarge(&'static str),
}

impl HttpError {
    /// The HTTP status code this rejection maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Malformed(_) => 400,
            HttpError::TooLarge(_) => 413,
        }
    }

    /// Human-readable description of the rejection.
    pub fn describe(&self) -> &'static str {
        match self {
            HttpError::Malformed(what) | HttpError::TooLarge(what) => what,
        }
    }
}

/// Try to parse one request from the front of `buf`.
///
/// # Errors
///
/// [`HttpError`] when the buffered bytes can never become a valid
/// request under `limits` — the connection should answer with the mapped
/// status and close.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, HttpError> {
    // Locate the end of the header section.
    let head_end = match find_subsequence(buf, b"\r\n\r\n") {
        Some(pos) => pos,
        None => {
            if buf.len() > limits.max_head_bytes {
                return Err(HttpError::TooLarge("header section exceeds limit"));
            }
            return Ok(Parsed::Partial);
        }
    };
    if head_end > limits.max_head_bytes {
        return Err(HttpError::TooLarge("header section exceeds limit"));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 bytes in header section"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path) = parse_request_line(request_line)?;
    let http10 = request_line.ends_with("HTTP/1.0");

    let mut content_length: Option<u64> = None;
    let mut close = http10;
    for line in lines {
        let (name, value) = parse_header(line)?;
        if name.eq_ignore_ascii_case("content-length") {
            let v: u64 = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("invalid Content-Length"))?;
            if let Some(prev) = content_length {
                if prev != v {
                    return Err(HttpError::Malformed("conflicting Content-Length headers"));
                }
            }
            content_length = Some(v);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed("transfer encodings are not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            // `Connection` is a comma-separated token list (RFC 9110
            // §7.6.1): `keep-alive, foo` must still honour the tokens it
            // does carry. `close` wins over `keep-alive` if both appear.
            let mut saw_close = false;
            let mut saw_keep_alive = false;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    saw_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    saw_keep_alive = true;
                }
            }
            if saw_close {
                close = true;
            } else if saw_keep_alive {
                close = false;
            }
        }
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes as u64 {
        return Err(HttpError::TooLarge("declared body exceeds limit"));
    }
    let body_len = body_len as usize;
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(Parsed::Partial);
    }
    Ok(Parsed::Complete {
        req: Request {
            method: method.to_string(),
            path: path.to_string(),
            body: buf[head_end + 4..total].to_vec(),
            close,
        },
        consumed: total,
    })
}

fn parse_request_line(line: &str) -> Result<(&str, &str), HttpError> {
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("invalid method token"));
    }
    if !path.starts_with('/') || path.len() > 1024 {
        return Err(HttpError::Malformed("invalid request target"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    Ok((method, path))
}

fn parse_header(line: &str) -> Result<(&str, &str), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header line without `:`"))?;
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpError::Malformed("invalid header name"));
    }
    if value.bytes().any(|b| (b < 0x20 && b != b'\t') || b == 0x7f) {
        return Err(HttpError::Malformed("control character in header value"));
    }
    Ok((name, value))
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header (seconds) — set on `503` sheds.
    pub retry_after: Option<u64>,
    /// The request's trace ID, echoed as the `x-maestro-trace` header
    /// (stamped by the connection loop on every response).
    pub trace: Option<String>,
    /// Brownout marker, emitted as `x-maestro-degraded` — set when the
    /// body was served from cache under pressure instead of computed
    /// fresh, so clients can tell a degraded 200 from a normal one.
    pub degraded: Option<&'static str>,
    /// Whether to close the connection after writing this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
            trace: None,
            degraded: None,
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
            trace: None,
            degraded: None,
            close: false,
        }
    }

    /// Serialize as an HTTP/1.1 response with `Content-Length`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        if let Some(trace) = &self.trace {
            head.push_str(&format!("x-maestro-trace: {trace}\r\n"));
        }
        if let Some(mode) = self.degraded {
            head.push_str(&format!("x-maestro-degraded: {mode}\r\n"));
        }
        if self.close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw, &Limits::default()).unwrap() {
            Parsed::Complete { req, consumed } => (req, consumed),
            Parsed::Partial => panic!("unexpected partial for {raw:?}"),
        }
    }

    #[test]
    fn parses_get_and_post() {
        let (req, n) = parse_ok(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(req.body.is_empty());
        assert!(!req.close);
        assert_eq!(n, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".len());

        let raw = b"POST /v1/analyze HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"";
        let (req, n) = parse_ok(raw);
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(n, raw.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, n) = parse_ok(raw);
        assert_eq!(req.path, "/a");
        let (req2, _) = parse_ok(&raw[n..]);
        assert_eq!(req2.path, "/b");
    }

    #[test]
    fn truncated_requests_are_partial() {
        for raw in [
            &b"GET"[..],
            b"GET /a HTTP/1.1\r\nHost",
            b"POST /a HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        ] {
            assert_eq!(
                parse_request(raw, &Limits::default()).unwrap(),
                Parsed::Partial
            );
        }
    }

    #[test]
    fn malformed_requests_get_400() {
        for raw in [
            &b"get /a HTTP/1.1\r\n\r\n"[..], // lowercase method
            b"GET a HTTP/1.1\r\n\r\n",       // relative target
            b"GET /a HTTP/2\r\n\r\n",        // bad version
            b"GET /a HTTP/1.1 X\r\n\r\n",    // extra token
            b"GET /a HTTP/1.1\r\nNoColon\r\n\r\n",
            b"GET /a HTTP/1.1\r\n: v\r\n\r\n", // empty name
            b"POST /a HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            b"POST /a HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /a HTTP/1.1\r\nH: \x01bad\r\n\r\n",
            b"GET /a HTTP/1.1\r\nH: del\x7fbyte\r\n\r\n", // DEL is a control byte too
        ] {
            let err = parse_request(raw, &Limits::default()).unwrap_err();
            assert_eq!(err.status(), 400, "{raw:?} → {err:?}");
        }
    }

    #[test]
    fn oversized_requests_get_413() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        // Oversized declared body.
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
        assert_eq!(parse_request(raw, &limits).unwrap_err().status(), 413);
        // Header section too big — with and without the terminator.
        let mut big = b"GET /a HTTP/1.1\r\n".to_vec();
        big.extend_from_slice(format!("X: {}\r\n\r\n", "y".repeat(100)).as_bytes());
        assert_eq!(parse_request(&big, &limits).unwrap_err().status(), 413);
        let unterminated = vec![b'A'; 100];
        assert_eq!(
            parse_request(&unterminated, &limits).unwrap_err().status(),
            413
        );
    }

    #[test]
    fn connection_semantics() {
        let (req, _) = parse_ok(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.close);
        let (req, _) = parse_ok(b"GET /a HTTP/1.0\r\n\r\n");
        assert!(req.close, "HTTP/1.0 defaults to close");
        let (req, _) = parse_ok(b"GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.close);
    }

    /// Pins the list-value gap: `Connection` tokens must be split on
    /// commas, and `close` must win when both tokens appear.
    #[test]
    fn connection_header_is_token_split() {
        let (req, _) = parse_ok(b"GET /a HTTP/1.1\r\nConnection: keep-alive, foo\r\n\r\n");
        assert!(!req.close, "keep-alive token in a list must be honoured");
        let (req, _) = parse_ok(b"GET /a HTTP/1.1\r\nConnection: foo, close\r\n\r\n");
        assert!(req.close, "close token in a list must be honoured");
        let (req, _) = parse_ok(b"GET /a HTTP/1.0\r\nConnection: upgrade, Keep-Alive\r\n\r\n");
        assert!(!req.close, "HTTP/1.0 keep-alive via list value");
        let (req, _) = parse_ok(b"GET /a HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n");
        assert!(req.close, "close wins over keep-alive");
        let (req, _) = parse_ok(b"GET /a HTTP/1.1\r\nConnection: upgrade\r\n\r\n");
        assert!(!req.close, "unknown tokens leave the default untouched");
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let mut r = Response::json(503, "{\"error\":\"shed\"}".to_string());
        r.retry_after = Some(1);
        r.trace = Some("00ab".repeat(8));
        r.degraded = Some("cache-only");
        r.close = true;
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("x-maestro-degraded: cache-only\r\n"));
        assert!(text.contains(&format!("x-maestro-trace: {}\r\n", "00ab".repeat(8))));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains(&format!(
            "Content-Length: {}\r\n",
            "{\"error\":\"shed\"}".len()
        )));
        assert!(text.ends_with("{\"error\":\"shed\"}"));
    }
}

//! The daemon: acceptor, bounded admission queue, worker pool, drain.
//!
//! Thread topology: the caller's thread runs the accept loop (and later
//! the drain); `workers` fixed threads pop connections from the bounded
//! queue and serve keep-alive request loops. There is no async runtime —
//! requests are CPU-bound analysis calls, so the pool *is* the
//! concurrency limit and the queue bound *is* the admission policy.
//!
//! The acceptor *blocks* in `accept(2)` — no poll loop, no latency
//! floor. Because the process interrupt flag is poll-only (the signal
//! handler just stores an atomic; there is nothing to `connect` a
//! condvar to), a dedicated `serve-acceptor-waker` thread polls the
//! shutdown token and, when it trips, performs one throwaway loopback
//! connection to the listener — the *wake token* — so the blocked
//! `accept` returns and the acceptor observes the drain. Connections
//! accepted after the token tripped (the wake token itself, or a client
//! that raced the signal) are closed unserved, exactly as the old
//! nonblocking loop left them to die in the backlog.
//!
//! Cancellation topology (the part that must not be gotten wrong):
//!
//! * the `shutdown` token passed to [`Server::run`] typically heeds the
//!   process interrupt flag — `SIGTERM` starts the drain;
//! * [`ApiCtx::request_root`] is **detached**: in-flight requests keep
//!   running through a drain (an accepted request is a promise);
//! * each request runs under `request_root.child_with_deadline(..)`, so
//!   per-request deadlines stay per-request;
//! * only when the drain deadline expires does the server cancel
//!   `request_root`, turning the stragglers into `504`s — still
//!   *written* responses, never dropped connections — and reports
//!   [`DrainOutcome::Forced`] (the CLI maps it to exit 7).

use crate::api::{classify, error_response, ApiCtx, Handled, ReqClass};
use crate::chaos::ChaosPlan;
use crate::http::{parse_request, Limits, Parsed, Request, Response};
use crate::queue::{AdmissionCtl, BoundedQueue};
use crate::supervise::{ThreadGuard, WorkerSlot, WorkerTable};
use crate::trace::{AccessLog, RequestTimer};
use maestro_core::SharedAnalysisCache;
use maestro_obs::trace::{FlightPolicy, FlightRecorder};
use maestro_obs::{Counter, Gauge, Histogram};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Daemon configuration (the CLI's `serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7433` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bounded admission queue depth; a full queue sheds with `503`.
    pub queue_depth: usize,
    /// Deadline for requests that do not carry `deadline_ms`.
    pub default_deadline: Duration,
    /// How long a drain waits for in-flight requests before forcing
    /// cancellation.
    pub drain_deadline: Duration,
    /// Maximum accepted request body size.
    pub max_body_bytes: usize,
    /// Socket read/write timeout (slow-loris guard).
    pub io_timeout: Duration,
    /// Per-shard capacity of the shared analysis cache.
    pub memo_cap: usize,
    /// Shard count of the shared analysis cache.
    pub shards: usize,
    /// Enable the test-only `POST /v1/panic` endpoint.
    pub test_endpoints: bool,
    /// JSONL access-log destination (`-` = stdout, `None` = off).
    pub access_log: Option<String>,
    /// Flight-recorder ring capacity (kept traces; the memory bound).
    pub trace_capacity: usize,
    /// Keep 1 in this many healthy requests (1 = keep all; errors and
    /// slow requests are always kept).
    pub trace_sample: u64,
    /// Requests at least this slow are always kept.
    pub trace_slow: Duration,
    /// Fixed trace-ID seed (tests); `None` seeds from the clock.
    pub trace_seed: Option<u64>,
    /// Upper bound on the `threads` a single `/v1/dse` request may claim.
    /// `0` (the default) resolves to the host's available parallelism —
    /// without a cap, `workers × threads` scoped threads from concurrent
    /// requests could oversubscribe the host.
    pub max_request_threads: usize,
    /// CoDel target for queue sojourn (accept → worker pop): sustained
    /// sojourn above this sheds at dequeue. Zero disables sojourn
    /// shedding (the queue-full check still applies).
    pub sojourn_target: Duration,
    /// How often the watchdog scans for crashed/wedged workers.
    pub watchdog_interval: Duration,
    /// Minimum live workers for `/readyz` to report ready; `0` means
    /// majority of the configured pool.
    pub worker_quorum: usize,
    /// A busy worker whose heartbeat is older than this is considered
    /// wedged and superseded. Zero disables wedge detection.
    pub wedge_after: Duration,
    /// Seeded fault-injection spec (`--chaos`), e.g.
    /// `read-err:0.01,worker-panic:0.005`; `None` = no injection.
    pub chaos: Option<String>,
    /// Seed for the chaos plan's deterministic draws.
    pub chaos_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".to_string(),
            workers: 4,
            queue_depth: 64,
            default_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            max_body_bytes: 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            memo_cap: maestro_core::DEFAULT_CACHE_CAP,
            shards: 8,
            test_endpoints: false,
            access_log: None,
            trace_capacity: 256,
            trace_sample: 16,
            trace_slow: Duration::from_millis(100),
            trace_seed: None,
            max_request_threads: 0,
            sojourn_target: Duration::from_millis(500),
            watchdog_interval: Duration::from_millis(250),
            worker_quorum: 0,
            wedge_after: Duration::from_secs(30),
            chaos: None,
            chaos_seed: 0,
        }
    }
}

/// How a drain ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every in-flight request finished inside the drain deadline.
    Clean,
    /// The drain deadline expired; in-flight request tokens were
    /// cancelled (their responses were still written as `504`s).
    Forced,
}

/// Serve-plane metrics, registered in the process-global registry under
/// `maestro.serve.*` (exposed as `maestro_serve_*`).
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Requests parsed and dispatched.
    pub requests_total: Counter,
    /// Connections shed by admission control (`503`).
    pub shed: Counter,
    /// Handler panics isolated by `catch_unwind` (`500`).
    pub panics: Counter,
    /// Requests that hit their deadline (`504`).
    pub timeouts: Counter,
    /// Requests rejected by the HTTP parser (`400`/`408`/`413`).
    pub bad_requests: Counter,
    /// Connections accepted (admitted or shed).
    pub connections: Counter,
    /// Response writes that failed (client gone before the body landed).
    pub write_failures: Counter,
    /// Connections shed at dequeue by the CoDel sojourn controller.
    pub shed_sojourn: Counter,
    /// Requests shed by class-based brownout (heavy work under pressure,
    /// uncached analyzes in brownout).
    pub brownout_shed: Counter,
    /// Analyze requests served cache-only with `x-maestro-degraded`.
    pub degraded: Counter,
    /// Worker threads respawned by the watchdog (crashes + wedges).
    pub worker_restarts: Counter,
    /// Faults injected by the `--chaos` plan.
    pub chaos_injected: Counter,
    /// Requests currently being served.
    pub in_flight: Gauge,
    /// Workers currently counting toward the `/readyz` quorum (refreshed
    /// by the watchdog).
    pub workers_live: Gauge,
    /// Connections admitted but not yet popped by a worker (sampled on
    /// every push and pop).
    pub queue_depth: Gauge,
    /// Seconds since the daemon started (refreshed on `/metrics`).
    pub uptime_seconds: Gauge,
    /// End-to-end request service time (seconds), log-spaced buckets.
    pub request_seconds: Histogram,
}

impl ServeMetrics {
    /// Register (or re-attach to) the serve-plane metrics.
    pub fn register() -> ServeMetrics {
        let r = maestro_obs::registry();
        ServeMetrics {
            requests_total: r.counter("maestro.serve.requests_total"),
            shed: r.counter("maestro.serve.shed"),
            panics: r.counter("maestro.serve.panics"),
            timeouts: r.counter("maestro.serve.timeouts"),
            bad_requests: r.counter("maestro.serve.bad_requests"),
            connections: r.counter("maestro.serve.connections"),
            write_failures: r.counter("maestro.serve.write_failures"),
            shed_sojourn: r.counter("maestro.serve.shed_sojourn"),
            brownout_shed: r.counter("maestro.serve.brownout_shed"),
            degraded: r.counter("maestro.serve.degraded"),
            worker_restarts: r.counter("maestro.serve.worker_restarts"),
            chaos_injected: r.counter("maestro.serve.chaos_injected"),
            in_flight: r.gauge("maestro.serve.in_flight"),
            workers_live: r.gauge("maestro.serve.workers_live"),
            queue_depth: r.gauge("maestro.serve.queue_depth"),
            uptime_seconds: r.gauge("maestro.serve.uptime_seconds"),
            // Log-spaced: 3 buckets per decade from 100µs to 10s, so a
            // single-digit-millisecond p99 is interpolated inside a
            // ~2x-wide bucket instead of a 5x-wide fixed one.
            request_seconds: r.histogram(
                "maestro.serve.request_seconds",
                &maestro_obs::metrics::log_buckets(1e-4, 10.0, 3),
            ),
        }
    }
}

/// A bound (but not yet running) daemon. Binding is separate from
/// running so the caller can learn the actual port (`addr:0`) before the
/// accept loop takes the thread over.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

impl Server {
    /// Bind the listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server { listener, cfg })
    }

    /// The bound address (resolves `:0` to the picked port).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop until `shutdown` trips, then drain.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures; serving errors on
    /// individual connections are absorbed (counted, logged) instead.
    pub fn run(self, shutdown: &maestro_obs::CancelToken) -> std::io::Result<DrainOutcome> {
        let Server { listener, cfg } = self;
        let metrics = ServeMetrics::register();
        maestro_obs::registry().info(
            "maestro.build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("git", option_env!("MAESTRO_GIT_HASH").unwrap_or("unknown")),
            ],
        );
        if let Some(seed) = cfg.trace_seed {
            maestro_obs::trace::seed_trace_ids(seed);
        }
        FlightRecorder::global().configure(FlightPolicy {
            capacity: cfg.trace_capacity,
            sample_k: cfg.trace_sample,
            slow_us: cfg.trace_slow.as_micros() as u64,
        });
        let access: Option<Arc<AccessLog>> = match &cfg.access_log {
            None => None,
            Some(path) => Some(Arc::new(AccessLog::open(path)?)),
        };
        let chaos = match &cfg.chaos {
            None => None,
            Some(spec) => Some(Arc::new(ChaosPlan::parse(spec, cfg.chaos_seed).map_err(
                |e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()),
            )?)),
        };
        let worker_count = cfg.workers.max(1);
        let admission = Arc::new(AdmissionCtl::new(cfg.sojourn_target));
        let table = Arc::new(WorkerTable::new(
            worker_count,
            cfg.worker_quorum,
            cfg.wedge_after,
        ));
        let ctx = Arc::new(ApiCtx {
            cache: SharedAnalysisCache::new(cfg.shards, cfg.memo_cap),
            request_root: maestro_obs::CancelToken::detached(),
            default_deadline: cfg.default_deadline,
            ready: AtomicBool::new(true),
            test_endpoints: cfg.test_endpoints,
            metrics: metrics.clone(),
            started: Instant::now(),
            max_request_threads: if cfg.max_request_threads > 0 {
                cfg.max_request_threads
            } else {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(8)
            },
            admission,
            workers: Arc::clone(&table),
            queue_len: Arc::new(AtomicUsize::new(0)),
            queue_cap: cfg.queue_depth.max(1),
            drain_secs: cfg.drain_deadline.as_secs().max(1),
        });
        let queue: Arc<BoundedQueue<(TcpStream, Instant)>> =
            Arc::new(BoundedQueue::new(cfg.queue_depth));
        let in_flight = Arc::new(AtomicU64::new(0));
        let limits = Limits {
            max_head_bytes: Limits::default().max_head_bytes,
            max_body_bytes: cfg.max_body_bytes,
        };

        let shared = Arc::new(WorkerShared {
            queue: Arc::clone(&queue),
            ctx: Arc::clone(&ctx),
            table: Arc::clone(&table),
            in_flight: Arc::clone(&in_flight),
            io_timeout: cfg.io_timeout,
            limits,
            access: access.clone(),
            chaos,
        });
        let mut pool = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let slot = table.new_slot(i);
            let handle = spawn_worker(&shared, Arc::clone(&slot))?;
            pool.push((slot, handle));
        }
        metrics.workers_live.set(table.live() as f64);
        let watchdog = {
            let shared = Arc::clone(&shared);
            let interval = cfg.watchdog_interval.max(Duration::from_millis(10));
            std::thread::Builder::new()
                .name("serve-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared, pool, interval))?
        };

        // The acceptor blocks in `accept(2)`; this thread is the only way
        // it learns about a drain. The interrupt flag is poll-only (the
        // signal handler just stores an atomic), so the waker polls the
        // token and then unblocks the acceptor with one throwaway
        // loopback connection — the wake token.
        let wake_addr = {
            let mut a = listener.local_addr()?;
            if a.ip().is_unspecified() {
                // `accept` listens on the wildcard; `connect` needs a
                // concrete address.
                a.set_ip(match a {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            a
        };
        let waker_token = shutdown.clone();
        let waker = std::thread::Builder::new()
            .name("serve-acceptor-waker".to_string())
            .spawn(move || {
                while !waker_token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                for attempt in 0..3 {
                    match TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)) {
                        // The accepted-and-dropped wake connection is all
                        // the acceptor needs; the stream closes here.
                        Ok(_) => return,
                        Err(e) if attempt == 2 => {
                            // The acceptor may have already observed the
                            // accept error path and broken out; if not,
                            // SIGKILL remains the operator's backstop.
                            maestro_obs::warn!("serve: acceptor wake failed: {e}");
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;

        maestro_obs::info!(
            "serve: listening with {} workers, queue depth {}",
            cfg.workers.max(1),
            cfg.queue_depth
        );
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if shutdown.is_cancelled() {
                        // The wake token, or a client that raced the
                        // signal: close it unserved, same as the old
                        // nonblocking loop left the backlog to die.
                        drop(stream);
                        break;
                    }
                    metrics.connections.inc();
                    match queue.try_push((stream, Instant::now())) {
                        Ok(()) => {
                            let depth = queue.len();
                            ctx.queue_len.store(depth, Ordering::Relaxed);
                            metrics.queue_depth.set(depth as f64);
                        }
                        Err((stream, accepted)) => shed(
                            stream,
                            accepted,
                            &metrics,
                            cfg.io_timeout,
                            access.as_deref(),
                            ctx.retry_hint(),
                        ),
                    }
                }
                Err(_) if shutdown.is_cancelled() => break,
                Err(e) => {
                    // Transient accept failures (EMFILE, ECONNABORTED):
                    // back off briefly and keep serving.
                    maestro_obs::warn!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // The waker either already connected (that is why accept woke) or
        // is about to; it never blocks longer than its connect timeout.
        let _ = waker.join();

        // --- Drain ---------------------------------------------------
        // Stop admitting: readiness off, listener closed, queue refuses
        // producers but keeps already-admitted connections poppable. The
        // table flips to draining so the watchdog stops wedge-replacing
        // (but keeps respawning crashed workers while the queue holds
        // admitted connections — the drain promise needs a pool).
        ctx.ready.store(false, Ordering::Relaxed);
        drop(listener);
        table.set_draining();
        queue.close();
        maestro_obs::info!("serve: drain started (deadline {:?})", cfg.drain_deadline);
        let t0 = Instant::now();
        // The watchdog owns the join handles (it reaps and respawns), so
        // the drain waits on the table's active-thread count instead —
        // every worker registration is RAII and survives panics.
        let outcome = if wait_for_threads(&table, t0, cfg.drain_deadline) {
            DrainOutcome::Clean
        } else {
            // The deadline expired with requests still in flight: cancel
            // their tokens so they finish as 504s, then give them a short
            // grace period to write those responses out.
            maestro_obs::warn!(
                "serve: drain deadline expired with {} requests in flight — cancelling",
                in_flight.load(Ordering::Relaxed)
            );
            ctx.request_root.cancel();
            wait_for_threads(&table, Instant::now(), Duration::from_secs(2));
            DrainOutcome::Forced
        };
        if outcome == DrainOutcome::Clean {
            // Every worker left its loop; the watchdog notices the empty
            // pool on its next tick and exits.
            if watchdog.join().is_err() {
                maestro_obs::error!("serve: the watchdog thread panicked");
            }
        } else {
            // A stuck worker keeps its handle unfinished forever; the
            // watchdog (like the stuck worker) is detached and reaped by
            // process exit.
            drop(watchdog);
        }
        maestro_obs::info!(
            "serve: drained in {:.3}s ({})",
            t0.elapsed().as_secs_f64(),
            match outcome {
                DrainOutcome::Clean => "clean",
                DrainOutcome::Forced => "forced",
            }
        );
        Ok(outcome)
    }
}

/// Everything a worker thread (original or respawned) needs, bundled so
/// the watchdog can spawn replacements with one `Arc` clone.
struct WorkerShared {
    queue: Arc<BoundedQueue<(TcpStream, Instant)>>,
    ctx: Arc<ApiCtx>,
    table: Arc<WorkerTable>,
    in_flight: Arc<AtomicU64>,
    io_timeout: Duration,
    limits: Limits,
    access: Option<Arc<AccessLog>>,
    chaos: Option<Arc<ChaosPlan>>,
}

/// Spawn one worker thread bound to `slot`. The loop beats the slot's
/// heartbeat at every iteration and around every connection; an injected
/// `worker-panic` fires *before* popping, so a chaos kill never takes an
/// admitted connection down with the thread.
fn spawn_worker(
    shared: &Arc<WorkerShared>,
    slot: Arc<WorkerSlot>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("serve-worker-{}", slot.index))
        .spawn(move || {
            let _guard = ThreadGuard::register(Arc::clone(&shared.table), Arc::clone(&slot));
            loop {
                slot.beat(shared.table.now_ms());
                if slot.is_superseded() {
                    // The watchdog gave up on this slot while it was
                    // wedged and spawned a replacement; exiting here
                    // avoids double-serving.
                    break;
                }
                if let Some(chaos) = &shared.chaos {
                    if chaos.worker_panic() {
                        shared.ctx.metrics.chaos_injected.inc();
                        panic!("chaos: injected worker panic");
                    }
                }
                let Some((stream, accepted)) = shared.queue.pop() else {
                    break; // queue closed and drained
                };
                let depth = shared.queue.len();
                shared.ctx.queue_len.store(depth, Ordering::Relaxed);
                shared.ctx.metrics.queue_depth.set(depth as f64);
                slot.set_busy(true, shared.table.now_ms());
                serve_connection(
                    stream,
                    accepted,
                    &shared.ctx,
                    &shared.in_flight,
                    shared.io_timeout,
                    &shared.limits,
                    shared.access.as_deref(),
                    shared.chaos.as_deref(),
                );
                slot.set_busy(false, shared.table.now_ms());
            }
        })
}

/// The watchdog: reap finished worker threads, respawn crashed ones,
/// supersede wedged ones, refresh the liveness gauges. Runs until the
/// drain finishes cleanly (draining + queue empty + no handles left);
/// a forced drain detaches it instead.
fn watchdog_loop(
    shared: &Arc<WorkerShared>,
    mut pool: Vec<(Arc<WorkerSlot>, std::thread::JoinHandle<()>)>,
    interval: Duration,
) {
    let metrics = &shared.ctx.metrics;
    let table = &shared.table;
    let mut last_scan = Instant::now();
    loop {
        // Sleep in small chunks so a drain is noticed (and drained
        // workers reaped) promptly even under a long scan interval; the
        // crash/wedge scan itself still runs once per `interval`.
        std::thread::sleep(interval.min(Duration::from_millis(25)));
        let draining = table.is_draining();
        if !draining && last_scan.elapsed() < interval {
            continue;
        }
        last_scan = Instant::now();
        // Reap finished threads; a panicked worker is respawned into the
        // same slot index. During a drain the pool is only sustained
        // while admitted connections remain — a crash afterwards is just
        // a thread that already did its job.
        let mut alive = Vec::with_capacity(pool.len());
        for (slot, handle) in pool {
            if !handle.is_finished() {
                alive.push((slot, handle));
                continue;
            }
            let crashed = handle.join().is_err();
            if !crashed {
                continue; // clean exit: drained queue or superseded slot
            }
            maestro_obs::warn!("serve: worker {} crashed", slot.index);
            if !slot.is_superseded() && (!draining || !shared.queue.is_empty()) {
                let fresh = table.new_slot(slot.index);
                match spawn_worker(shared, Arc::clone(&fresh)) {
                    Ok(h) => {
                        metrics.worker_restarts.inc();
                        maestro_obs::info!("serve: worker {} respawned", fresh.index);
                        alive.push((fresh, h));
                    }
                    Err(e) => {
                        maestro_obs::error!("serve: failed to respawn worker {}: {e}", slot.index);
                    }
                }
            }
        }
        pool = alive;
        // Wedge scan: a busy worker silent past the threshold cannot be
        // killed (std threads have no safe cancellation), so its slot is
        // superseded — out of quorum, told to exit if it ever returns —
        // and a replacement takes the index. Skipped while draining:
        // stragglers there are the drain deadline's problem.
        if !draining {
            let now = table.now_ms();
            let wedged: Vec<Arc<WorkerSlot>> = pool
                .iter()
                .filter(|(slot, _)| slot.is_wedged(now, table.wedge_after))
                .map(|(slot, _)| Arc::clone(slot))
                .collect();
            for slot in wedged {
                slot.supersede();
                maestro_obs::warn!(
                    "serve: worker {} wedged (heartbeat {}ms old) — superseding",
                    slot.index,
                    slot.heartbeat_age_ms(now)
                );
                let fresh = table.new_slot(slot.index);
                match spawn_worker(shared, Arc::clone(&fresh)) {
                    Ok(h) => {
                        metrics.worker_restarts.inc();
                        pool.push((fresh, h));
                    }
                    Err(e) => {
                        maestro_obs::error!(
                            "serve: failed to replace wedged worker {}: {e}",
                            slot.index
                        );
                    }
                }
            }
        }
        metrics.workers_live.set(table.live() as f64);
        let now = table.now_ms();
        for slot in table.slots() {
            maestro_obs::registry()
                .gauge(&format!(
                    "maestro.serve.worker_heartbeat_age_ms.{}",
                    slot.index
                ))
                .set(slot.heartbeat_age_ms(now) as f64);
        }
        table.retire_dead();
        if draining && shared.queue.is_empty() && pool.is_empty() {
            return;
        }
    }
}

/// Poll until every registered worker thread has left its loop (their
/// RAII guards hit zero) or `budget` elapsed.
fn wait_for_threads(table: &WorkerTable, t0: Instant, budget: Duration) -> bool {
    loop {
        if table.active_threads() == 0 {
            return true;
        }
        if t0.elapsed() >= budget {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Admission-control rejection: immediate `503` + `Retry-After`, close.
/// Shed requests get a trace too — a 503 outcome is always tail-kept, so
/// overload events stay diagnosable after the fact. `retry_after` is the
/// computed drain-time hint (see `ApiCtx::retry_hint`), not a constant.
fn shed(
    stream: TcpStream,
    accepted: Instant,
    metrics: &ServeMetrics,
    io_timeout: Duration,
    access: Option<&AccessLog>,
    retry_after: u64,
) {
    metrics.shed.inc();
    let mut timer = RequestTimer::begin(accepted);
    timer.mark("shed");
    let mut resp = error_response(503, "server is at capacity, retry later");
    resp.retry_after = Some(retry_after);
    resp.trace = Some(timer.id().to_hex());
    resp.close = true;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(io_timeout.min(Duration::from_secs(1))));
    let mut stream = stream;
    let bytes = resp.to_bytes();
    let _ = stream.write_all(&bytes);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let rec = timer.finish("shed".to_string(), 503, resp.body.len() as u64);
    if let Some(log) = access {
        log.write(&rec);
    }
    let _ = FlightRecorder::global().record(rec);
}

/// Serve one connection: a keep-alive loop of parse → handle → respond.
///
/// Trace anchoring: the connection's *first* request is anchored at
/// `accepted`, so its `queue` phase is the real admission wait
/// (accept → worker pop). Keep-alive successors are anchored at the
/// first byte observed after the previous response — client think time
/// between requests is idle line time, not served latency, and is left
/// out of the trace.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    accepted: Instant,
    ctx: &ApiCtx,
    in_flight: &AtomicU64,
    io_timeout: Duration,
    limits: &Limits,
    access: Option<&AccessLog>,
    chaos: Option<&ChaosPlan>,
) {
    let popped = Instant::now();
    if let Some(plan) = chaos {
        // Injected read error: the connection dies before any request
        // byte is read — the client sees a clean reset (zero response
        // bytes), never a truncated response.
        if plan.read_error() {
            ctx.metrics.chaos_injected.inc();
            return;
        }
    }
    let mut stream = stream;
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(io_timeout)).is_err()
        || stream.set_write_timeout(Some(io_timeout)).is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 8 * 1024];
    // `Some` until the first request completes parsing.
    let mut first: Option<(Instant, Instant)> = Some((accepted, popped));
    // First instant bytes of the *current* request were observed.
    let mut first_byte: Option<Instant> = None;
    // No response byte written yet (gates chaos write faults: injecting
    // after the first response would truncate, not refuse).
    let mut wrote_any = false;
    loop {
        match parse_request(&buf, limits) {
            Ok(Parsed::Complete { req, consumed }) => {
                buf.drain(..consumed);
                let parsed_at = Instant::now();
                let first_info = first.take();
                let mut timer = match first_info {
                    Some((accepted, popped)) => {
                        let mut t = RequestTimer::begin(accepted);
                        t.phase_span("queue", accepted, popped);
                        t.phase_span("parse", popped, parsed_at);
                        t
                    }
                    None => {
                        let anchor = first_byte.unwrap_or(parsed_at);
                        let mut t = RequestTimer::begin(anchor);
                        t.phase_span("parse", anchor, parsed_at);
                        t
                    }
                };
                // CoDel sojourn shed, decided at dequeue with the parsed
                // request in hand: only the connection's first request
                // carries queue sojourn, and critical-class probes
                // (health/metrics) are never shed — nor fed to the
                // controller, so they don't consume drop tokens.
                if let Some((q_accepted, q_popped)) = first_info {
                    if ctx.admission.enabled() && classify(&req) != ReqClass::Critical {
                        let sojourn = q_popped.duration_since(q_accepted);
                        if ctx.admission.on_dequeue(sojourn, q_popped) {
                            ctx.metrics.shed_sojourn.inc();
                            timer.mark("shed");
                            let mut resp =
                                ctx.shed_response("queue sojourn exceeded target, request shed");
                            resp.close = true;
                            resp.trace = Some(timer.id().to_hex());
                            let route = format!("{} {}", req.method, req.path);
                            crate::trace::install(timer);
                            write_and_account(
                                &mut stream,
                                &resp.to_bytes(),
                                &route,
                                resp.status,
                                resp.body.len() as u64,
                                &ctx.metrics,
                                access,
                            );
                            return;
                        }
                    }
                }
                first_byte = if buf.is_empty() {
                    None
                } else {
                    // Pipelined bytes of the next request are already
                    // buffered; its clock starts now.
                    Some(parsed_at)
                };
                // Keep the `parse` attribution open across routing and
                // body decode; `ApiCtx::with_body` advances it.
                timer.mark("parse");
                let route = format!("{} {}", req.method, req.path);
                crate::trace::install(timer);
                match serve_request(ctx, &req, in_flight, &stream, chaos) {
                    Handled::Response(resp) => {
                        let close = resp.close || req.close || !ctx.ready.load(Ordering::Relaxed);
                        let mut resp = resp;
                        resp.close = close;
                        if resp.trace.is_none() {
                            resp.trace = crate::trace::active_id().map(|id| id.to_hex());
                        }
                        if let Some(plan) = chaos {
                            if !wrote_any {
                                // Both write faults only fire before the
                                // connection's first response byte: a
                                // skipped or late *first* response is a
                                // refusal the client can retry; the same
                                // fault mid keep-alive would be a torn
                                // stream.
                                if let Some(delay) = plan.write_delay() {
                                    ctx.metrics.chaos_injected.inc();
                                    std::thread::sleep(delay);
                                }
                                if plan.write_error() {
                                    ctx.metrics.chaos_injected.inc();
                                    ctx.metrics.write_failures.inc();
                                    crate::trace::finish_active_write_failed(&route, access);
                                    return;
                                }
                            }
                        }
                        let bytes = resp.to_bytes();
                        let write_failed = write_and_account(
                            &mut stream,
                            &bytes,
                            &route,
                            resp.status,
                            resp.body.len() as u64,
                            &ctx.metrics,
                            access,
                        );
                        wrote_any = true;
                        if write_failed || close {
                            return;
                        }
                    }
                    Handled::Streamed(sum) => {
                        // The handler already wrote the NDJSON response;
                        // only the accounting and the close remain (EOF
                        // is the framing — streams never keep-alive).
                        if sum.write_failed {
                            ctx.metrics.write_failures.inc();
                            crate::trace::finish_active_write_failed(&route, access);
                        } else {
                            crate::trace::finish_active(&route, sum.status, sum.bytes, access);
                        }
                        return;
                    }
                }
            }
            Ok(Parsed::Partial) => match stream.read(&mut chunk) {
                Ok(0) => return, // EOF (possibly mid-request: nothing to answer)
                Ok(n) => {
                    if buf.is_empty() && n > 0 && first_byte.is_none() {
                        first_byte = Some(Instant::now());
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Slow-loris: bytes of an unfinished request arrived,
                    // then the line went quiet past the read timeout.
                    if !buf.is_empty() {
                        ctx.metrics.bad_requests.inc();
                        let mut resp = error_response(408, "request timed out");
                        reject_with_trace(
                            &mut stream,
                            &mut resp,
                            first.take().map(|(a, _)| a).or(first_byte),
                            access,
                        );
                    }
                    return;
                }
                Err(_) => return,
            },
            Err(e) => {
                ctx.metrics.bad_requests.inc();
                let mut resp = error_response(e.status(), e.describe());
                reject_with_trace(
                    &mut stream,
                    &mut resp,
                    first.take().map(|(a, _)| a).or(first_byte),
                    access,
                );
                return;
            }
        }
    }
}

/// Write a parser-rejection response (`400`/`408`/`413`) with a trace:
/// even requests that never parsed get an `x-maestro-trace` header and a
/// recorder entry, anchored at the best-known request start.
fn reject_with_trace(
    stream: &mut TcpStream,
    resp: &mut Response,
    anchor: Option<Instant>,
    access: Option<&AccessLog>,
) {
    let anchor = anchor.unwrap_or_else(Instant::now);
    let mut timer = RequestTimer::begin(anchor);
    timer.phase_span("parse", anchor, Instant::now());
    resp.trace = Some(timer.id().to_hex());
    let _ = stream.write_all(&resp.to_bytes());
    let rec = timer.finish("reject".to_string(), resp.status, resp.body.len() as u64);
    if let Some(log) = access {
        log.write(&rec);
    }
    let _ = FlightRecorder::global().record(rec);
}

/// Write the response bytes and record the request's true outcome: a
/// failed write is *not* a served request, so it is counted in
/// `write_failures` and traced as a distinct, always-kept `499` record
/// instead of being logged as the success the client never saw.
/// Returns whether the write failed (the caller must close).
fn write_and_account<W: Write>(
    sink: &mut W,
    bytes: &[u8],
    route: &str,
    status: u16,
    body_len: u64,
    metrics: &ServeMetrics,
    access: Option<&AccessLog>,
) -> bool {
    if sink.write_all(bytes).is_err() {
        metrics.write_failures.inc();
        crate::trace::finish_active_write_failed(route, access);
        true
    } else {
        crate::trace::finish_active(route, status, body_len, access);
        false
    }
}

/// Dispatch one request under panic isolation and metrics accounting.
/// The active timer's trace ID is installed as the thread's span context
/// for the duration, so spans recorded by the analysis engines carry it.
/// The socket is in reach so streaming handlers (NDJSON `/v1/dse`) can
/// write incrementally; a panic *mid-stream* still yields a buffered 500
/// — the connection loop appends it and closes, and the client detects
/// the truncation by the absent `"final":true` line.
fn serve_request(
    ctx: &ApiCtx,
    req: &Request,
    in_flight: &AtomicU64,
    stream: &TcpStream,
    chaos: Option<&ChaosPlan>,
) -> Handled {
    if let Some(delay) = chaos.and_then(ChaosPlan::stall) {
        // Injected handler stall: burns request budget and drives queue
        // sojourn up, exercising the deadline and CoDel paths.
        ctx.metrics.chaos_injected.inc();
        std::thread::sleep(delay);
    }
    ctx.metrics.requests_total.inc();
    in_flight.fetch_add(1, Ordering::Relaxed);
    // One atomic add on the gauge itself: the old load-then-`set` pair
    // let two concurrent requests publish the same stale snapshot and
    // leave the gauge permanently skewed.
    ctx.metrics.in_flight.inc();
    let t0 = Instant::now();
    let span_prev = crate::trace::active_id().map(maestro_obs::trace::set_current);
    let handled = match catch_unwind(AssertUnwindSafe(|| ctx.handle_conn(req, stream))) {
        Ok(handled) => handled,
        Err(_) => {
            ctx.metrics.panics.inc();
            let mut r = error_response(500, "internal panic in request handler");
            r.close = true;
            Handled::Response(r)
        }
    };
    if let Some(prev) = span_prev {
        maestro_obs::trace::clear_current(prev);
    }
    ctx.metrics
        .request_seconds
        .observe(t0.elapsed().as_secs_f64());
    in_flight.fetch_sub(1, Ordering::Relaxed);
    ctx.metrics.in_flight.dec();
    handled
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink whose writes always fail, standing in for a peer that hung
    /// up before the response landed.
    struct FailWriter;

    impl Write for FailWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::from(ErrorKind::BrokenPipe))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    // Regression: failed response writes used to be logged as successes
    // (the trace finished with the handler's 200 even though the client
    // never saw a byte). Pin the distinct outcome: `write_failures`
    // increments and the trace is force-kept with status 499.
    #[test]
    fn failed_write_is_accounted_as_a_distinct_outcome() {
        let metrics = ServeMetrics::register();
        let before = metrics.write_failures.get();
        crate::trace::install(RequestTimer::begin(Instant::now()));
        let failed = write_and_account(
            &mut FailWriter,
            b"HTTP/1.1 200 OK\r\n\r\n",
            "POST /v1/test-write-fail",
            200,
            0,
            &metrics,
            None,
        );
        assert!(failed, "a failing sink must report write failure");
        assert_eq!(metrics.write_failures.get(), before + 1);
        let kept = FlightRecorder::global()
            .recent()
            .into_iter()
            .find(|r| r.name == "POST /v1/test-write-fail")
            .expect("write-failure trace must be force-kept");
        assert_eq!(
            kept.status, 499,
            "failed writes record 499, not the handler status"
        );

        // The success path must NOT touch the counter.
        crate::trace::install(RequestTimer::begin(Instant::now()));
        let ok = write_and_account(
            &mut Vec::new(),
            b"HTTP/1.1 200 OK\r\n\r\n",
            "POST /v1/test-write-ok",
            200,
            0,
            &metrics,
            None,
        );
        assert!(!ok);
        assert_eq!(metrics.write_failures.get(), before + 1);
    }
}

//! A minimal, hardened JSON parser for request bodies.
//!
//! The workspace's offline `serde_json` shim only *writes* JSON, so the
//! daemon parses request bodies with this hand-written recursive-descent
//! parser. It is deliberately small and defensive: hard depth and size
//! limits, no recursion past [`MAX_DEPTH`], and no panics on any input —
//! the parser-fuzz property tests feed it arbitrary bytes.

/// Maximum nesting depth accepted before the parser bails with
/// `"too deeply nested"` — bounds stack use on adversarial input.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (duplicate keys: last one wins on
    /// [`Value::get`] lookups is *not* guaranteed — first match wins).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (rejects fractions, negatives and overflow).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] on any syntax violation, depth past [`MAX_DEPTH`], or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.i, what }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("too deeply nested"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.i += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.i += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so the
                    // boundary math cannot fail; fall back defensively).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.i += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\u` + low surrogate.
        if (0xD800..=0xDBFF).contains(&hi) {
            if !self.eat("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..=0xDFFF).contains(&hi) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("invalid number"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if self.digits() == 0 {
                return Err(self.err("digits required after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("digits required in exponent"));
            }
        }
        // The scanned slice is ASCII digits/sign/dot/exp, always valid
        // UTF-8 and a valid float literal.
        let text =
            std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if n.is_finite() {
            Ok(Value::Num(n))
        } else {
            Err(self.err("number out of range"))
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        self.i - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shaped_documents() {
        let v = parse(
            r#"{"model":"vgg16","layer":"conv1_1","pes":256,"deadline_ms":250.0,
                "styles":["KC-P","C-K"],"flag":true,"opt":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("model").and_then(Value::as_str), Some("vgg16"));
        assert_eq!(v.get("pes").and_then(Value::as_u64), Some(256));
        assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(250));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("opt"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        match v.get("styles") {
            Some(Value::Arr(items)) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed_inputs_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "01x",
            "-",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\x01\"",
            "\"unterminated",
            "{\"a\":1}x",
            "[1 2]",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 2),
            "]".repeat(MAX_DEPTH + 2)
        );
        assert_eq!(parse(&deep_bad).unwrap_err().what, "too deeply nested");
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("1.5").unwrap().as_u64(), None, "fractional");
        assert_eq!(parse("-1").unwrap().as_u64(), None, "negative");
    }
}

//! `maestro serve`: a hardened, long-lived analysis daemon.
//!
//! Serves the cost model ([`maestro_core::analyze`]), the design-space
//! explorer ([`maestro_dse::Explorer`]) and the conformance harness
//! ([`maestro_sim::run_conform_cancellable`]) over hand-rolled HTTP/1.1 +
//! JSON on a [`std::net::TcpListener`] — the build environment is offline,
//! so there is no async runtime or HTTP dependency to lean on, and none is
//! needed: requests are CPU-bound analysis calls, so a fixed worker-thread
//! pool with a bounded accept queue is the right shape.
//!
//! Robustness properties, each regression-tested:
//!
//! * **Event-driven accept** — the acceptor blocks in `accept(2)` (no
//!   poll loop, no accept-latency floor); a drain wakes it with one
//!   loopback *wake token* connection (see [`server`] docs).
//! * **Amortized request cost** — `POST /v1/batch` serves many analyze
//!   points through one connection, one parse and one cache session with
//!   per-item error isolation, and `POST /v1/dse` with `"stream": true`
//!   streams incremental NDJSON frontier updates as units complete.
//! * **Admission control** — a bounded connection queue; when it is full
//!   the acceptor sheds load with an immediate `503` + `Retry-After`
//!   instead of letting latency collapse (`maestro.serve.shed`).
//! * **Per-request deadlines** — every request runs under a
//!   [`CancelToken::child_with_deadline`] child token, so a timed-out
//!   request returns a typed `504` with a partial-result marker and can
//!   never cancel the server (or a sibling request).
//! * **Panic isolation** — each request is wrapped in `catch_unwind`; a
//!   panicking handler returns `500`, increments `maestro.serve.panics`,
//!   and the worker thread survives.
//! * **Socket hygiene** — read/write timeouts (slow-loris → `408`) and a
//!   max-request-size guard (oversized body/headers → `413`).
//! * **Graceful drain** — `SIGTERM`/`SIGINT` stops accepting, flips
//!   `/readyz` to not-ready, finishes in-flight requests under a drain
//!   deadline, then exits cleanly; a forced drain cancels in-flight
//!   request tokens instead of dropping their responses.
//!
//! [`CancelToken::child_with_deadline`]: maestro_obs::CancelToken::child_with_deadline

#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod api;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod trace;

pub use api::{effective_threads, ApiCtx, Handled, StreamSummary, MAX_BATCH_POINTS};
pub use http::{parse_request, HttpError, Limits, Parsed, Request, Response};
pub use json::{parse as parse_json, JsonError, Value};
pub use queue::BoundedQueue;
pub use server::{DrainOutcome, ServeConfig, ServeMetrics, Server};

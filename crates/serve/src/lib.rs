//! `maestro serve`: a hardened, long-lived analysis daemon.
//!
//! Serves the cost model ([`maestro_core::analyze`]), the design-space
//! explorer ([`maestro_dse::Explorer`]) and the conformance harness
//! ([`maestro_sim::run_conform_cancellable`]) over hand-rolled HTTP/1.1 +
//! JSON on a [`std::net::TcpListener`] — the build environment is offline,
//! so there is no async runtime or HTTP dependency to lean on, and none is
//! needed: requests are CPU-bound analysis calls, so a fixed worker-thread
//! pool with a bounded accept queue is the right shape.
//!
//! Robustness properties, each regression-tested:
//!
//! * **Event-driven accept** — the acceptor blocks in `accept(2)` (no
//!   poll loop, no accept-latency floor); a drain wakes it with one
//!   loopback *wake token* connection (see [`server`] docs).
//! * **Amortized request cost** — `POST /v1/batch` serves many analyze
//!   points through one connection, one parse and one cache session with
//!   per-item error isolation, and `POST /v1/dse` with `"stream": true`
//!   streams incremental NDJSON frontier updates as units complete.
//! * **Admission control** — a bounded connection queue; when it is full
//!   the acceptor sheds load with an immediate `503` + a *computed*
//!   `Retry-After` (queue depth × observed median service time)
//!   instead of letting latency collapse (`maestro.serve.shed`), and a
//!   CoDel-style controller sheds at dequeue when queue sojourn stays
//!   above `--sojourn-target` (`maestro.serve.shed_sojourn`).
//! * **Priority-aware brownout** — requests are classed (health/metrics
//!   over analyze/batch over dse/conform); under pressure heavy classes
//!   shed first, and deadline-pressed analyzes are served from the
//!   shared report cache with an `x-maestro-degraded` header instead of
//!   504ing (`maestro.serve.brownout_shed`, `maestro.serve.degraded`).
//! * **Worker supervision** — per-worker heartbeats, a watchdog that
//!   respawns crashed workers and supersedes wedged ones
//!   (`maestro.serve.worker_restarts`), and a `/readyz` that reports 503
//!   with the cause when live workers fall below quorum.
//! * **Deterministic chaos** — `--chaos` injects seeded socket faults,
//!   worker panics and handler stalls (the DSE `--inject` splitmix64
//!   discipline), so overload invariants are CI-assertable.
//! * **Per-request deadlines** — every request runs under a
//!   [`CancelToken::child_with_deadline`] child token, so a timed-out
//!   request returns a typed `504` with a partial-result marker and can
//!   never cancel the server (or a sibling request).
//! * **Panic isolation** — each request is wrapped in `catch_unwind`; a
//!   panicking handler returns `500`, increments `maestro.serve.panics`,
//!   and the worker thread survives.
//! * **Socket hygiene** — read/write timeouts (slow-loris → `408`) and a
//!   max-request-size guard (oversized body/headers → `413`).
//! * **Graceful drain** — `SIGTERM`/`SIGINT` stops accepting, flips
//!   `/readyz` to not-ready, finishes in-flight requests under a drain
//!   deadline, then exits cleanly; a forced drain cancels in-flight
//!   request tokens instead of dropping their responses.
//!
//! [`CancelToken::child_with_deadline`]: maestro_obs::CancelToken::child_with_deadline

#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::print_stderr,
        clippy::exit
    )
)]

pub mod api;
pub mod chaos;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod supervise;
pub mod trace;

pub use api::{
    classify, effective_threads, ApiCtx, Handled, Pressure, ReqClass, StreamSummary,
    MAX_BATCH_POINTS,
};
pub use chaos::{ChaosPlan, ChaosSpecError};
pub use http::{parse_request, HttpError, Limits, Parsed, Request, Response};
pub use json::{parse as parse_json, JsonError, Value};
pub use queue::{AdmissionCtl, BoundedQueue};
pub use server::{DrainOutcome, ServeConfig, ServeMetrics, Server};
pub use supervise::{ThreadGuard, WorkerSlot, WorkerTable};

//! Embeds the short git hash as `MAESTRO_GIT_HASH` for the
//! `maestro_build_info` metric. Builds from a tarball (no `.git`, no
//! `git` binary) fall back to the compiled-in `"unknown"`.

fn main() {
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let hash = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    if let Some(hash) = hash {
        println!("cargo:rustc-env=MAESTRO_GIT_HASH={hash}");
    }
}

//! Offline stand-in for `proptest`, implementing the subset of its API
//! this workspace's property tests use.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the `proptest!` test files compiling
//! and genuinely property-testing:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_filter`;
//! * integer range strategies (`lo..hi`, `lo..=hi`), [`bool::ANY`],
//!   [`Just`], and tuple composition up to arity 10;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Differences from the real crate: generation is driven by a fixed-seed
//! xorshift PRNG (deterministic per test name, so failures reproduce), and
//! there is **no shrinking** — a failing case is reported at the size it
//! was generated.

/// Deterministic xorshift64* PRNG seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator with a seed derived from `name` (FNV-1a), so each test
    /// gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// A generator seeded directly from a user-supplied integer (splitmix64
    /// finalizer, so nearby seeds yield unrelated streams). Seed 0 is valid.
    pub fn from_seed(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TestRng(z | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..n` (`n > 0`; modulo bias is irrelevant at
    /// the range sizes property tests use).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// Generation parameters for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. `generate` returns `None` when a filter rejected the
/// sample (the harness retries with fresh randomness).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values failing `f` (the `reason` is informational only).
    fn prop_filter<R, F: Fn(&Self::Value) -> bool>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
    {
        let _ = reason.into();
        Filter { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let outer = self.inner.generate(rng)?;
        (self.f)(outer).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.generate(rng)?;
        if (self.f)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                Some(lo + rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// `Vec`s of `elem`-generated values with a length drawn uniformly
    /// from `len` (half-open, like the real crate's `SizeRange`).
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy {
            elem,
            lo: len.start,
            hi: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.hi - self.lo) as u64;
            let n = self.lo + rng.below(span.max(1)) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.elem.generate(rng)?);
            }
            Some(out)
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Everything the property-test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skip the current sample without failing (continues the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let __strategy = ($($strat,)+);
            let mut __accepted: u32 = 0;
            let mut __attempts: u64 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts < u64::from(__config.cases) * 200 + 10_000,
                    "proptest shim: strategy for `{}` rejected too many samples",
                    stringify!($name),
                );
                let __value = match $crate::Strategy::generate(&__strategy, &mut __rng) {
                    Some(v) => v,
                    None => continue,
                };
                __accepted += 1;
                let ($($pat,)+) = __value;
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng).unwrap();
            assert!((3..17).contains(&v));
            let w = (5usize..=5).generate(&mut rng).unwrap();
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = crate::TestRng::from_seed(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
        // Seed 0 must not wedge the xorshift state.
        let mut z = crate::TestRng::from_seed(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn filter_rejects() {
        let mut rng = crate::TestRng::from_name("filter");
        let evens = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut seen = 0;
        for _ in 0..200 {
            if let Some(v) = evens.generate(&mut rng) {
                assert_eq!(v % 2, 0);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies(x in 1u64..5, (a, b) in (0u64..3).prop_flat_map(|a| (Just(a), a..a + 3))) {
            prop_assert!((1..5).contains(&x));
            prop_assume!(b >= a);
            prop_assert!(b >= a);
            prop_assert_eq!(a, a);
        }
    }
}

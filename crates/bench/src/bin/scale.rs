//! PE-scaling study: throughput and utilization of each dataflow style as
//! the array grows — the "which dataflow scales" counterpart to the
//! paper's fixed-256-PE case study (§5.1's utilization discussion).

use maestro_bench::layer;
use maestro_core::analyze;
use maestro_dnn::zoo;
use maestro_hw::Accelerator;
use maestro_ir::Style;

fn main() {
    let vgg = zoo::vgg16(1);
    let pes = [64u64, 128, 256, 512, 1024];
    for lname in ["CONV2", "CONV11"] {
        let l = layer(&vgg, lname);
        println!("== VGG16 {lname}: throughput (MACs/cycle) [utilization %] ==");
        print!("{:<7}", "flow");
        for p in pes {
            print!("{p:>16}");
        }
        println!();
        for style in Style::ALL {
            print!("{:<7}", style.short_name());
            for p in pes {
                // Keep NoC bandwidth proportional to the array, as real
                // designs do.
                let acc = Accelerator::builder(p)
                    .noc_bandwidth((p / 8).max(8))
                    .build();
                match analyze(l, &style.dataflow(), &acc) {
                    Ok(r) => print!(
                        "{:>16}",
                        format!("{:.0} [{:.0}%]", r.throughput(), r.utilization * 100.0)
                    ),
                    Err(_) => print!("{:>16}", "-"),
                }
            }
            println!();
        }
        println!();
    }
}

//! Regenerates paper Figure 10: runtime and energy of the five dataflow
//! styles across the five evaluation DNNs, plus the adaptive
//! (best-per-layer) dataflow.

use maestro_bench::{case_study_acc, figure10_models};
use maestro_core::{analyze, analyze_model_with};
use maestro_hw::EnergyModel;
use maestro_ir::Style;

fn main() {
    let acc = case_study_acc();
    let em = EnergyModel::cacti_28nm(acc.l1_bytes, acc.l2_bytes);
    println!("Figure 10 — runtime (cycles) and energy (pJ), 256 PEs / 32 B/cy NoC\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "model", "C-P", "X-P", "YX-P", "YR-P", "KC-P", "Adaptive"
    );
    let mut avg_fixed = [0.0f64; 5];
    let mut avg_adaptive = 0.0f64;
    let mut energy_rows = Vec::new();
    for model in figure10_models() {
        let mut rt = Vec::new();
        let mut en = Vec::new();
        for (i, style) in Style::ALL.iter().enumerate() {
            let report = analyze_model_with(&model, &acc, |l| {
                // Layers the style cannot map (e.g. cluster too large) fall
                // back to the best feasible style for fairness.
                let df = style.dataflow();
                if analyze(l, &df, &acc).is_ok() {
                    df
                } else {
                    best_for(l, &acc)
                }
            })
            .expect("model analysis");
            avg_fixed[i] += report.runtime();
            rt.push(report.runtime());
            en.push(report.energy(&em));
        }
        let adaptive = analyze_model_with(&model, &acc, |l| best_for(l, &acc)).expect("adaptive");
        avg_adaptive += adaptive.runtime();
        rt.push(adaptive.runtime());
        en.push(adaptive.energy(&em));
        println!(
            "{:<14} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}   runtime",
            model.name, rt[0], rt[1], rt[2], rt[3], rt[4], rt[5]
        );
        energy_rows.push((model.name.clone(), en));
    }
    println!();
    for (name, en) in &energy_rows {
        println!(
            "{:<14} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}   energy",
            name, en[0], en[1], en[2], en[3], en[4], en[5]
        );
    }
    let best_fixed = avg_fixed.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nadaptive vs best fixed dataflow: {:.1}% runtime reduction",
        100.0 * (1.0 - avg_adaptive / best_fixed)
    );
}

fn best_for(l: &maestro_dnn::Layer, acc: &maestro_hw::Accelerator) -> maestro_ir::Dataflow {
    Style::ALL
        .iter()
        .map(|s| s.dataflow())
        .min_by(|a, b| {
            let ra = analyze(l, a, acc).map(|r| r.runtime).unwrap_or(f64::MAX);
            let rb = analyze(l, b, acc).map(|r| r.runtime).unwrap_or(f64::MAX);
            ra.total_cmp(&rb)
        })
        .expect("non-empty")
}

//! DSE-rate smoke benchmark: staged vs. full evaluation on the standard
//! space (VGG16 CONV2 under the KC-P variants, single thread — the
//! configuration behind EXPERIMENTS.md's dse_rate numbers).
//!
//! Verifies the two modes stay bit-identical on this workload, then times
//! both (best of N repeats) and writes `BENCH_dse_rate.json` so CI can
//! track the effective exploration rate. Two speedups are reported, with
//! distinct denominators: `speedup_vs_full` is same-run staged over full
//! (what the staging itself buys), and `speedup_vs_baseline` is staged
//! over the committed pre-staged baseline below (the EXPERIMENTS.md
//! headline, which also includes the gains the refactor brought to full
//! mode).
//!
//! Usage: `dse_rate_smoke [--out <path>] [--repeats <n>]`

use maestro_bench::layer;
use maestro_dnn::zoo;
use maestro_dse::{variants, DseResult, EvalMode, Explorer, SweepSpace};
use maestro_ir::Style;
use serde::Serialize;
use std::hint::black_box;

/// The strongest documented *pre-staged* run of this exact workload
/// (`--threads 1`, best of repeats, single-core container — see
/// EXPERIMENTS.md "Staged evaluation dse_rate — before / after"). The
/// denominator for `speedup_vs_baseline`; frozen so the headline number
/// keeps meaning the same thing across revisions.
const BASELINE_PRE_STAGED_SECONDS: f64 = 0.0187;
const BASELINE_PRE_STAGED_RATE: f64 = 1.50e7;

/// The machine-readable record CI archives as `BENCH_dse_rate.json`.
#[derive(Serialize)]
struct RateReport {
    bench: &'static str,
    workload: &'static str,
    style: &'static str,
    space: &'static str,
    threads: u32,
    repeats: u32,
    explored: u64,
    valid: u64,
    full_seconds: f64,
    full_rate: f64,
    staged_seconds: f64,
    staged_rate: f64,
    /// The headline number: effective designs/second in the default mode.
    dse_rate: f64,
    /// Same-run staged over full: what staging alone buys this revision.
    speedup_vs_full: f64,
    /// Staged over the committed pre-staged baseline
    /// (`BASELINE_PRE_STAGED_RATE`): the EXPERIMENTS.md headline.
    speedup_vs_baseline: f64,
    baseline_pre_staged_seconds: f64,
    baseline_pre_staged_rate: f64,
    bit_identical: bool,
}

fn arg(name: &str) -> Option<String> {
    let mut argv = std::env::args();
    while let Some(a) = argv.next() {
        if a == name {
            return argv.next();
        }
    }
    None
}

fn canonical(mut r: DseResult) -> DseResult {
    r.stats.seconds = 0.0;
    r.stats.rate = 0.0;
    r
}

/// Best-of-`repeats` sweep under `eval`; returns (result, best seconds).
fn run(eval: EvalMode, repeats: u32) -> (DseResult, f64) {
    let vgg = zoo::vgg16(1);
    let l = layer(&vgg, "CONV2");
    let maps = variants::variants(Style::KCP);
    let mut e = Explorer::new(SweepSpace::standard());
    e.eval = eval;
    let mut best = f64::MAX;
    let mut result = None;
    for _ in 0..repeats.max(1) {
        let r = e
            .explore(black_box(l), black_box(&maps))
            .expect("valid sweep space");
        assert!(r.stats.valid > 0, "{eval}: empty sweep");
        best = best.min(r.stats.seconds);
        result = Some(r);
    }
    let r = result.expect("at least one repeat ran");
    (r, best)
}

fn main() {
    let out = arg("--out").unwrap_or_else(|| "BENCH_dse_rate.json".to_string());
    let repeats: u32 = arg("--repeats")
        .map(|v| v.parse().expect("--repeats expects an integer"))
        .unwrap_or(3);

    let (full, full_secs) = run(EvalMode::Full, repeats);
    let (staged, staged_secs) = run(EvalMode::Staged, repeats);
    assert_eq!(
        canonical(full.clone()),
        canonical(staged.clone()),
        "staged and full sweeps diverged — rates are meaningless"
    );

    let explored = staged.stats.explored;
    let full_rate = explored as f64 / full_secs;
    let staged_rate = explored as f64 / staged_secs;
    let speedup_vs_full = staged_rate / full_rate;
    let speedup_vs_baseline = staged_rate / BASELINE_PRE_STAGED_RATE;
    println!("DSE rate smoke — VGG16 CONV2 / KC-P variants / standard space (1 thread)");
    println!(
        "  baseline{:>9.3} ms  {:>10.3e} designs/s  (pre-staged, committed constant)",
        1e3 * BASELINE_PRE_STAGED_SECONDS,
        BASELINE_PRE_STAGED_RATE
    );
    println!(
        "  full    {:>9.3} ms  {:>10.3e} designs/s",
        1e3 * full_secs,
        full_rate
    );
    println!(
        "  staged  {:>9.3} ms  {:>10.3e} designs/s",
        1e3 * staged_secs,
        staged_rate
    );
    println!(
        "  speedup {speedup_vs_full:.2}x vs same-run full, \
         {speedup_vs_baseline:.1}x vs pre-staged baseline, results bit-identical"
    );

    let report = RateReport {
        bench: "dse_rate_smoke",
        workload: "vgg16/CONV2",
        style: "KC-P",
        space: "standard",
        threads: 1,
        repeats,
        explored,
        valid: staged.stats.valid,
        full_seconds: full_secs,
        full_rate,
        staged_seconds: staged_secs,
        staged_rate,
        dse_rate: staged_rate,
        speedup_vs_full,
        speedup_vs_baseline,
        baseline_pre_staged_seconds: BASELINE_PRE_STAGED_SECONDS,
        baseline_pre_staged_rate: BASELINE_PRE_STAGED_RATE,
        bit_identical: true,
    };
    let rendered = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out, rendered + "\n").expect("write benchmark report");
    println!("  wrote {out}");
}

//! Regenerates paper Figure 13: the hardware design spaces of KC-P and
//! YR-P accelerators on VGG16 CONV2 (early) and CONV11 (late) under the
//! Eyeriss-envelope budget (16 mm², 450 mW), the throughput- and
//! energy-optimized points, and the DSE statistics table (13c).

use maestro_bench::{layer, threads_arg};
use maestro_dnn::zoo;
use maestro_dse::{variants, DesignPoint, Explorer, SweepSpace};
use maestro_ir::Style;

fn main() {
    let threads = threads_arg();
    let vgg = zoo::vgg16(1);
    // Collect spans for the per-stage time breakdown printed at the end.
    maestro_obs::span::enable();
    println!("Figure 13 — design-space exploration (area<=16mm2, power<=450mW)\n");
    let mut stats_rows = Vec::new();
    for style in [Style::KCP, Style::YRP] {
        for lname in ["CONV2", "CONV11"] {
            let l = layer(&vgg, lname);
            let explorer = Explorer::new(SweepSpace::standard());
            let r = explorer
                .explore_parallel(l, &variants::variants(style), threads)
                .expect("valid sweep space");
            println!("== {} on VGG16 {lname} ==", style.short_name());
            if !r.stats.quarantined.is_empty() {
                maestro_obs::warn!(
                    "{} work unit(s) quarantined — results are incomplete",
                    r.stats.quarantined.len()
                );
            }
            let show = |tag: &str, p: &Option<DesignPoint>| {
                if let Some(p) = p {
                    println!(
                        "  {tag}: {:>3} PEs, NoC {:>2}, L1 {:>6} B, L2 {:>8} B, {:<18} {:>7.1} MAC/cy {:>11.3e} pJ {:>5.1} mm2 {:>4.0} mW",
                        p.pes, p.noc_bw, p.l1_bytes, p.l2_bytes, p.mapping, p.throughput, p.energy, p.area_mm2, p.power_mw
                    );
                }
            };
            show("throughput-opt", &r.best_throughput);
            show("energy-opt    ", &r.best_energy);
            show("EDP-opt       ", &r.best_edp);
            if let (Some(t), Some(e)) = (&r.best_throughput, &r.best_energy) {
                println!(
                    "  energy-opt vs throughput-opt: {:.2}x SRAM, {:.0}% PEs, {:.2}x power, {:.0}% throughput, {:.1}% EDP",
                    (e.l1_bytes * e.pes + e.l2_bytes) as f64 / (t.l1_bytes * t.pes + t.l2_bytes) as f64,
                    100.0 * e.pes as f64 / t.pes as f64,
                    t.power_mw / e.power_mw,
                    100.0 * e.throughput / t.throughput,
                    100.0 * e.edp / t.edp,
                );
            }
            // Area->throughput frontier (the scatter's upper envelope).
            let mut buckets: Vec<(f64, f64)> = Vec::new();
            for p in &r.sample {
                let b = (p.area_mm2 / 2.0).floor() * 2.0;
                match buckets.iter_mut().find(|(a, _)| (*a - b).abs() < 1e-9) {
                    Some((_, t)) => *t = t.max(p.throughput),
                    None => buckets.push((b, p.throughput)),
                }
            }
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let frontier: Vec<String> = buckets
                .iter()
                .map(|(a, t)| format!("{a:>2.0}mm2:{t:.0}"))
                .collect();
            println!("  area->max-throughput frontier: {}", frontier.join("  "));
            println!();
            stats_rows.push((style.short_name(), lname, r.stats));
        }
    }
    println!("Figure 13(c) — DSE statistics");
    println!(
        "{:<6} {:<8} {:>12} {:>12} {:>10} {:>14}",
        "flow", "layer", "valid", "explored", "time (s)", "rate (dsg/s)"
    );
    for (flow, layer, s) in stats_rows {
        println!(
            "{:<6} {:<8} {:>12} {:>12} {:>10.2} {:>14.2e}",
            flow, layer, s.valid, s.explored, s.seconds, s.rate
        );
    }

    maestro_obs::span::disable();
    let events = maestro_obs::span::drain();
    println!("\nPer-stage time breakdown");
    print!("{}", maestro_obs::span::breakdown_table(&events));
}

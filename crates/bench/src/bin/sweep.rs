//! Sensitivity sweeps backing the paper's §5.2 discussion: throughput vs
//! NoC bandwidth ("an accelerator can achieve peak throughput [only if]
//! the NoC provides sufficient bandwidth") and DRAM traffic vs L2
//! capacity (the buffer/throughput/energy balance of Figure 13's text).
//!
//! Each table row's cells are independent cost-model calls, so they are
//! computed with [`maestro_bench::parallel_map`] (`--threads <n>`, default
//! one worker per core) and printed in fixed column order.

use maestro_bench::{layer, parallel_map, threads_arg};
use maestro_core::analyze;
use maestro_dnn::zoo;
use maestro_hw::Accelerator;
use maestro_ir::Style;

fn main() {
    let threads = threads_arg();
    let vgg = zoo::vgg16(1);
    println!("Throughput (MACs/cycle) vs NoC bandwidth, 256 PEs:\n");
    print!("{:<10}", "BW el/cy");
    let bws = [1u64, 2, 4, 8, 16, 32, 64, 128];
    for bw in bws {
        print!("{bw:>9}");
    }
    println!();
    for (lname, style) in [
        ("CONV2", Style::KCP),
        ("CONV2", Style::YRP),
        ("CONV11", Style::KCP),
        ("CONV11", Style::CP),
    ] {
        let l = layer(&vgg, lname);
        print!("{:<10}", format!("{}/{}", style.short_name(), lname));
        let cells = parallel_map(&bws, threads, |&bw| {
            let acc = Accelerator::builder(256).noc_bandwidth(bw).build();
            analyze(l, &style.dataflow(), &acc)
                .ok()
                .map(|r| r.throughput())
        });
        for cell in cells {
            match cell {
                Some(throughput) => print!("{throughput:>9.1}"),
                None => print!("{:>9}", "-"),
            }
        }
        println!();
    }

    println!("\nDRAM traffic (elements) vs L2 capacity, KC-P on CONV2:\n");
    print!("{:<10}", "L2 KB");
    let l2s = [16u64, 64, 256, 1024, 4096, 16384];
    for l2 in l2s {
        print!("{l2:>12}");
    }
    println!();
    print!("{:<10}", "DRAM");
    let l = layer(&vgg, "CONV2");
    let cells = parallel_map(&l2s, threads, |&l2| {
        let acc = Accelerator::builder(256).l2_bytes(l2 * 1024).build();
        let r = analyze(l, &Style::KCP.dataflow(), &acc).expect("analysis");
        r.counts.dram_read.total() + r.counts.dram_write.total()
    });
    for dram in cells {
        print!("{dram:>12.3e}");
    }
    println!();
}

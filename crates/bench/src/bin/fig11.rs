//! Regenerates paper Figure 11: activation/filter reuse factors (with the
//! algorithmic maximum "A") and NoC bandwidth requirements of the five
//! dataflows on four representative operators.

use maestro_bench::{case_study_acc, figure11_operators, layer};
use maestro_core::analyze;
use maestro_dnn::TensorKind;
use maestro_ir::Style;

fn main() {
    let acc = case_study_acc();
    println!("Figure 11 — reuse factors and NoC bandwidth needs (256 PEs)\n");
    for (label, model, lname) in figure11_operators() {
        let l = layer(&model, &lname);
        println!("== {label} ({}/{lname}) ==", model.name);
        println!(
            "{:<8} {:>14} {:>14} {:>16}",
            "flow", "act. reuse", "filt. reuse", "BW need (el/cy)"
        );
        let mut alg = (0.0, 0.0);
        for style in Style::ALL {
            match analyze(l, &style.dataflow(), &acc) {
                Ok(r) => {
                    alg = (
                        r.algorithmic_max_reuse(TensorKind::Input),
                        r.algorithmic_max_reuse(TensorKind::Weight),
                    );
                    println!(
                        "{:<8} {:>14.1} {:>14.1} {:>16.1}",
                        style.short_name(),
                        r.reuse_factor(TensorKind::Input),
                        r.reuse_factor(TensorKind::Weight),
                        r.peak_bw
                    );
                }
                Err(e) => println!("{:<8} (not mappable: {e})", style.short_name()),
            }
        }
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>16}",
            "A (max)", alg.0, alg.1, "-"
        );
        println!();
    }
}

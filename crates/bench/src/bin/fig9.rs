//! Regenerates paper Figure 9: runtime validation of the analytical model
//! against the step-exact reference simulator (our substitute for the
//! MAERI and Eyeriss RTL testbeds), on VGG16 (KC-P, 64 PEs) and AlexNet
//! (YR-P, 168 PEs).

use maestro_dnn::zoo;
use maestro_hw::Accelerator;
use maestro_ir::Style;
use maestro_sim::{validate_network, SimOptions};
use std::time::Instant;

fn main() {
    let runs = [
        (
            "VGG16 / KC-P (MAERI-like, 64 PEs)",
            zoo::vgg16(1),
            Style::KCP,
            Accelerator::maeri_like(64),
        ),
        (
            "AlexNet / YR-P (Eyeriss-like, 168 PEs)",
            zoo::alexnet(1),
            Style::YRP,
            Accelerator::eyeriss_like(),
        ),
    ];
    println!("Figure 9 — analytical model vs step-exact simulator\n");
    for (label, model, style, acc) in runs {
        let t0 = Instant::now();
        let (points, mean) =
            validate_network(&model, &style.dataflow(), &acc, SimOptions::default());
        println!("== {label} ==");
        println!(
            "{:<12} {:>14} {:>14} {:>8}",
            "layer", "model (cyc)", "sim (cyc)", "err %"
        );
        for p in &points {
            println!(
                "{:<12} {:>14.0} {:>14.0} {:>8.2}",
                p.layer,
                p.model_runtime,
                p.sim_runtime,
                p.runtime_error_pct()
            );
            assert_eq!(p.sim_macs, p.exact_macs, "MAC conservation");
        }
        println!(
            "mean abs runtime error: {mean:.2}% over {} layers  ({:.1}s wall)\n",
            points.len(),
            t0.elapsed().as_secs_f64()
        );
    }
}

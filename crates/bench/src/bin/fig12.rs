//! Regenerates paper Figure 12: the energy breakdown (MAC, L1/L2 reads and
//! writes per tensor, including partial-sum L2 traffic) of the five
//! dataflows on VGG16 CONV1 and CONV11, normalized to C-P's MAC energy.

use maestro_bench::layer;
use maestro_core::analyze;
use maestro_dnn::{zoo, TensorKind};
use maestro_hw::EnergyModel;
use maestro_ir::Style;

fn main() {
    let vgg = zoo::vgg16(1);
    let acc = maestro_bench::case_study_acc();
    // The paper's Figure 12 breakdown covers on-chip activity only
    // (MAC, L1, L2); zero the DRAM term so the stacks are comparable.
    let mut em = EnergyModel::normalized();
    em.dram = 0.0;
    println!("Figure 12 — energy breakdown, normalized to C-P MAC energy\n");
    for lname in ["CONV1", "CONV11"] {
        let l = layer(&vgg, lname);
        let base = analyze(l, &Style::CP.dataflow(), &acc)
            .expect("C-P")
            .energy_breakdown(&em)
            .mac;
        println!("== VGG16 {lname} ==");
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
            "flow",
            "MAC",
            "L1Rd",
            "L1Wr",
            "L2Rd In",
            "L2Rd Wt",
            "L2Rd Sum",
            "L2Wr Sum",
            "L2Wr Out",
            "total"
        );
        for style in Style::ALL {
            let r = analyze(l, &style.dataflow(), &acc).expect("analysis");
            let b = r.energy_breakdown(&em);
            // "Sum" rows are the partial-sum refetch/spill traffic; final
            // output commits are the remainder of the L2 writes.
            let l2rd_sum = b.l2_read[TensorKind::Output];
            let l2wr_total = b.l2_write[TensorKind::Output];
            let outputs = r.tensor_elems[TensorKind::Output as usize] as f64 * em.l2_write;
            let l2wr_out = outputs.min(l2wr_total);
            let l2wr_sum = (l2wr_total - l2wr_out).max(0.0);
            println!(
                "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.1}",
                style.alias(),
                b.mac / base,
                b.l1_read.total() / base,
                b.l1_write.total() / base,
                b.l2_read[TensorKind::Input] / base,
                b.l2_read[TensorKind::Weight] / base,
                l2rd_sum / base,
                l2wr_sum / base,
                l2wr_out / base,
                b.total() / base,
            );
        }
        println!();
    }
}

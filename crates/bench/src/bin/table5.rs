//! Regenerates paper Table 5: the impact of multicast/reduction support,
//! NoC bandwidth and buffer size on a KC-P design for VGG16 CONV2
//! (56 PEs, as in the paper).

use maestro_bench::layer;
use maestro_core::analyze;
use maestro_dnn::zoo;
use maestro_dse::variants::kcp_variant;
use maestro_hw::{Accelerator, EnergyModel, ReuseSupport, SpatialMulticast, SpatialReduction};

fn main() {
    let vgg = zoo::vgg16(1);
    let conv2 = layer(&vgg, "CONV2");
    let em = EnergyModel::cacti_28nm(2048, 1 << 20);
    let mk = |bw: u64, support: ReuseSupport| {
        Accelerator::builder(56)
            .noc_bandwidth(bw)
            .support(support)
            .build()
    };
    // The paper's 56-PE design point: KC-P with a 8-wide channel cluster (7 K-clusters x 8 C-lanes)
    // (the canonical Cluster(64) cannot subdivide 56 PEs).
    let df = kcp_variant(8, 1, 1);
    let rows: Vec<(&str, Accelerator)> = vec![
        ("Reference", mk(40, ReuseSupport::full())),
        ("Small bandwidth", mk(2, ReuseSupport::full())),
        (
            "No multicast",
            mk(
                40,
                ReuseSupport {
                    multicast: SpatialMulticast::None,
                    reduction: SpatialReduction::Fanin,
                },
            ),
        ),
        (
            "No sp. reduction",
            mk(
                40,
                ReuseSupport {
                    multicast: SpatialMulticast::Fanout,
                    reduction: SpatialReduction::None,
                },
            ),
        ),
    ];
    println!("Table 5 — HW support impact (KC-P, VGG16 CONV2, 56 PEs)");
    println!(
        "{:<18} {:>4} {:>6} {:>6} {:>12} {:>14} {:>10}",
        "Design point", "BW", "mcast", "red", "tput MAC/cyc", "energy (pJ)", "L1 B/PE"
    );
    println!("{}", "-".repeat(76));
    let reference = analyze(conv2, &df, &rows[0].1).expect("reference");
    let ref_energy = reference.energy(&em);
    for (name, acc) in &rows {
        let r = analyze(conv2, &df, acc).expect(name);
        println!(
            "{:<18} {:>4} {:>6} {:>6} {:>12.2} {:>14.3e} {:>10}  ({:+.1}% energy)",
            name,
            acc.noc.bandwidth,
            (acc.support.multicast != SpatialMulticast::None) as u8,
            (acc.support.reduction != SpatialReduction::None) as u8,
            r.throughput(),
            r.energy(&em),
            r.l1_per_pe_elems,
            100.0 * (r.energy(&em) / ref_energy - 1.0),
        );
    }
}

//! Whole-network design-space exploration: each hardware point is
//! evaluated with the best per-layer mapping (embedded auto-tuning), the
//! natural end-to-end extension of the paper's per-layer DSE (§5.2).

use maestro_dnn::zoo;
use maestro_dse::{tuner::default_candidates, Explorer, SweepSpace};

fn main() {
    let model = zoo::alexnet(1);
    let explorer = Explorer::new(SweepSpace::tiny());
    let candidates = default_candidates();
    let r = explorer.explore_model(&model, &candidates);
    println!(
        "whole-model DSE over {}: {} designs explored, {} valid, {:.2}s",
        model.name, r.stats.explored, r.stats.valid, r.stats.seconds
    );
    let show = |tag: &str, p: &Option<maestro_dse::DesignPoint>| {
        if let Some(p) = p {
            println!(
                "  {tag}: {:>3} PEs, NoC {:>2}, L1 {:>6} B, L2 {:>8} B -> {:>12.0} cyc end-to-end, {:>11.3e} pJ, {:.1} mm2, {:.0} mW",
                p.pes, p.noc_bw, p.l1_bytes, p.l2_bytes, p.runtime, p.energy, p.area_mm2, p.power_mw
            );
        }
    };
    show("throughput-opt", &r.best_throughput);
    show("energy-opt    ", &r.best_energy);
    show("EDP-opt       ", &r.best_edp);
    println!("  Pareto front: {} points", r.pareto.len());
}

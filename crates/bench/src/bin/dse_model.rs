//! Whole-network design-space exploration: each hardware point is
//! evaluated with the best per-layer mapping (embedded auto-tuning), the
//! natural end-to-end extension of the paper's per-layer DSE (§5.2).

use maestro_bench::threads_arg;
use maestro_dnn::zoo;
use maestro_dse::{tuner::default_candidates, Explorer, SweepSpace};

/// `--model <zoo name>` (default `alexnet`). VGG16 is the interesting
/// memo-cache case: its repeated layer shapes make most per-layer
/// analyses cache hits.
fn model_arg() -> maestro_dnn::Model {
    let mut argv = std::env::args();
    let mut name = "alexnet".to_string();
    while let Some(a) = argv.next() {
        if a == "--model" {
            name = argv.next().unwrap_or_default();
        }
    }
    zoo::by_name(&name, 1).unwrap_or_else(|| panic!("unknown zoo model `{name}`"))
}

fn main() {
    let threads = threads_arg();
    let model = model_arg();
    // Collect spans for the per-stage time breakdown printed at the end.
    maestro_obs::span::enable();
    let explorer = Explorer::new(SweepSpace::tiny());
    let candidates = default_candidates();
    let r = explorer
        .explore_model_parallel(&model, &candidates, threads)
        .expect("valid sweep space");
    println!(
        "whole-model DSE over {}: {} designs explored, {} valid ({} memo hits), {:.2}s",
        model.name, r.stats.explored, r.stats.valid, r.stats.memo_hits, r.stats.seconds
    );
    if !r.stats.quarantined.is_empty() {
        maestro_obs::warn!(
            "{} work unit(s) quarantined — results are incomplete",
            r.stats.quarantined.len()
        );
    }
    let show = |tag: &str, p: &Option<maestro_dse::DesignPoint>| {
        if let Some(p) = p {
            println!(
                "  {tag}: {:>3} PEs, NoC {:>2}, L1 {:>6} B, L2 {:>8} B -> {:>12.0} cyc end-to-end, {:>11.3e} pJ, {:.1} mm2, {:.0} mW",
                p.pes, p.noc_bw, p.l1_bytes, p.l2_bytes, p.runtime, p.energy, p.area_mm2, p.power_mw
            );
        }
    };
    show("throughput-opt", &r.best_throughput);
    show("energy-opt    ", &r.best_energy);
    show("EDP-opt       ", &r.best_edp);
    println!("  Pareto front: {} points", r.pareto.len());

    maestro_obs::span::disable();
    let events = maestro_obs::span::drain();
    println!("\nPer-stage time breakdown");
    print!("{}", maestro_obs::span::breakdown_table(&events));
}

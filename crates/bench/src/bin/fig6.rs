//! Regenerates paper Figure 6(d): the per-PE data mapping of the
//! row-stationary example over two time steps and two clusters.

use maestro_dnn::{Layer, LayerDims, Operator, TensorKind};
use maestro_ir::styles;
use maestro_sim::mapping_at_step;

fn main() {
    let layer = Layer::new("fig1", Operator::conv2d(), LayerDims::square(2, 4, 6, 8, 3));
    let df = styles::figure6_row_stationary();
    println!("Figure 6 — row-stationary mapping on 6 PEs (2 clusters x 3)\n{df}\n");
    for t in [0u64, 1] {
        println!("== time step {t} ==");
        let maps = mapping_at_step(&layer, &df, 6, t).expect("mapping");
        for kind in TensorKind::ALL {
            println!("  {kind}:");
            for m in &maps {
                let coords: Vec<String> = m.ranges[kind as usize]
                    .iter()
                    .map(|(d, iv)| format!("{d} {}-{}", iv.start, iv.start + iv.len - 1))
                    .collect();
                println!(
                    "    PE{} (cluster {}) : {}",
                    m.pe,
                    m.unit_coords[0],
                    coords.join(", ")
                );
            }
        }
        println!();
    }
}

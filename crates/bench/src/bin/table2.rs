//! Regenerates paper Table 2: hardware implementation choices for the four
//! reuse classes, with the latency/amplification each choice implies in
//! this workspace's model (for a 64-wide level).

use maestro_hw::{SpatialMulticast, SpatialReduction};

fn main() {
    println!("Table 2 — hardware implementation choices for reuse");
    println!(
        "{:<10} {:<14} {:<28} {:>8} {:>14}",
        "Reuse", "Comm. type", "Implementation", "latency", "upstream amp."
    );
    println!("{}", "-".repeat(78));
    let n = 64;
    for m in [
        SpatialMulticast::Fanout,
        SpatialMulticast::StoreAndForward,
        SpatialMulticast::None,
    ] {
        println!(
            "{:<10} {:<14} {:<28} {:>8} {:>11} rd",
            "spatial",
            "multicast",
            m.to_string(),
            m.extra_latency(n),
            m.upstream_reads(n)
        );
    }
    for r in [
        SpatialReduction::Fanin,
        SpatialReduction::ReduceAndForward,
        SpatialReduction::None,
    ] {
        println!(
            "{:<10} {:<14} {:<28} {:>8} {:>11} wr",
            "spatial",
            "reduction",
            r.to_string(),
            r.extra_latency(n),
            r.upstream_writes(n)
        );
    }
    println!(
        "{:<10} {:<14} {:<28} {:>8} {:>14}",
        "temporal", "multicast", "stationary buffer (L1)", 0, "1 rd"
    );
    println!(
        "{:<10} {:<14} {:<28} {:>8} {:>14}",
        "temporal", "reduction", "read-modify-write buffer", 0, "1 wr"
    );
}

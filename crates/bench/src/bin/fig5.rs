//! Regenerates paper Figure 5: the six 1-D convolution playground
//! dataflows and the temporal/spatial reuse each exposes, using the
//! model's automatic reuse explanation.

use maestro_core::explain;
use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::styles;

fn main() {
    // The playground layer: 1-D convolution, X' = 6, S = 3 (Figure 5).
    let layer = Layer::new(
        "conv1d",
        Operator::conv2d(),
        LayerDims {
            n: 1,
            k: 1,
            c: 1,
            y: 1,
            x: 8,
            r: 1,
            s: 3,
            stride_y: 1,
            stride_x: 1,
        },
    );
    println!("Figure 5 — 1-D convolution dataflow playground (X'=6, S=3, 3 PEs)\n");
    for id in ['A', 'B', 'C', 'D', 'E', 'F'] {
        let df = styles::playground(id).expect("playground id");
        let pes = if id == 'F' { 6 } else { 3 };
        let acc = Accelerator::builder(pes).build();
        println!("({id}) {}", df);
        match explain(&layer, &df, &acc) {
            Ok(e) => {
                for l in &e.levels {
                    let notes: Vec<String> =
                        l.observations.iter().map(ToString::to_string).collect();
                    println!(
                        "    level {} ({} units): {}",
                        l.level,
                        l.units,
                        notes.join("; ")
                    );
                }
            }
            Err(err) => println!("    (cannot resolve: {err})"),
        }
        println!();
    }
}

//! Regenerates paper Table 4: DNN operator classes with examples drawn
//! from the model zoo.

use maestro_bench::figure10_models;
use maestro_dnn::zoo::operator_table;

fn main() {
    let mut models = figure10_models();
    models.push(maestro_dnn::zoo::dcgan(1));
    println!("Table 4 — operators in state-of-the-art DNNs");
    println!("{:<22} examples", "Operator class");
    println!("{}", "-".repeat(72));
    for row in operator_table(&models, 3) {
        println!("{:<22} {}", row.class.to_string(), row.examples.join(", "));
    }
}

//! `loadgen` — a self-driving load generator for `maestro serve`.
//!
//! Closed-loop client threads fire analyze (or mixed analyze/dse/conform)
//! requests at a running daemon, with the retry discipline a well-behaved
//! client owes an admission-controlled server: exponential backoff with
//! jitter on `503`/connect failures, honoring the server's *computed*
//! `Retry-After` as a backoff floor, all under a per-request deadline
//! budget so a retry storm can never run unbounded.
//!
//! `--offered-rate <r>` switches to an *open loop*: each thread fires on
//! a fixed tick schedule (`r / concurrency` per second from a common
//! start), so offered load stays constant even as the server slows down —
//! the only honest way to measure goodput under overload. Ticks the
//! client cannot keep up with are counted as `missed`, never silently
//! absorbed into a lower offered rate.
//!
//! Outcome classes (the chaos smoke keys on `dropped`):
//!
//! * `ok` — complete `2xx` response (latency recorded);
//! * `shed` — a well-formed `503` that survived the retry budget;
//! * `timeout` — a well-formed `504` (the request's own deadline);
//! * `refused` — connect failed or the connection reset before *any*
//!   response byte (a clean TCP-level rejection, expected once a drain
//!   has closed the listener);
//! * `dropped` — a response that *started* but never completed, or a
//!   malformed one. The daemon's drain guarantee is `dropped == 0` even
//!   when it is killed mid-load; loadgen exits 1 if that is violated.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7433 [--seconds 5] [--concurrency 8]
//!         [--mode analyze|mixed|batch|stream] [--deadline-ms 2000]
//!         [--budget-ms 4000] [--retries 4] [--offered-rate <r>]
//!         [--json] [--out report.json]
//! ```
//!
//! `batch` fires 8-point `/v1/batch` requests; `stream` fires NDJSON
//! `/v1/dse` streams (EOF-framed — a stream counts `ok` only once its
//! `"final":true` line fully arrived, so a truncated stream is
//! `dropped`). `mixed` sprinkles both in with analyze/dse/conform.

use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

#[derive(Debug, Clone)]
struct Config {
    addr: String,
    seconds: f64,
    concurrency: usize,
    mode: String,
    deadline_ms: u64,
    budget_ms: u64,
    retries: u32,
    /// Open-loop offered load in requests/second across all threads
    /// (0 = closed loop: each thread fires as fast as replies arrive).
    offered_rate: f64,
    json: bool,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: "127.0.0.1:7433".to_string(),
        seconds: 5.0,
        concurrency: 8,
        mode: "analyze".to_string(),
        deadline_ms: 2000,
        budget_ms: 4000,
        retries: 4,
        offered_rate: 0.0,
        json: false,
        out: String::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = || {
            argv.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = take(),
            "--seconds" => cfg.seconds = take().parse().expect("--seconds"),
            "--concurrency" => cfg.concurrency = take().parse().expect("--concurrency"),
            "--mode" => cfg.mode = take(),
            "--deadline-ms" => cfg.deadline_ms = take().parse().expect("--deadline-ms"),
            "--budget-ms" => cfg.budget_ms = take().parse().expect("--budget-ms"),
            "--retries" => cfg.retries = take().parse().expect("--retries"),
            "--offered-rate" => cfg.offered_rate = take().parse().expect("--offered-rate"),
            "--json" => cfg.json = true,
            "--out" => cfg.out = take(),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(
        matches!(cfg.mode.as_str(), "analyze" | "mixed" | "batch" | "stream"),
        "--mode must be analyze|mixed|batch|stream"
    );
    assert!(
        cfg.offered_rate.is_finite() && cfg.offered_rate >= 0.0,
        "--offered-rate must be a non-negative rate in requests/second"
    );
    cfg
}

/// Small xorshift PRNG for jitter and request-mix draws (no external
/// randomness dependencies in this offline workspace).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[derive(Debug, Default, Clone)]
struct Tally {
    sent: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    timeout: u64,
    client_error: u64,
    server_error: u64,
    refused: u64,
    dropped: u64,
    retries: u64,
    missed: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.client_error += other.client_error;
        self.server_error += other.server_error;
        self.refused += other.refused;
        self.dropped += other.dropped;
        self.retries += other.retries;
        self.missed += other.missed;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// A complete parsed response: status plus the two serve-plane headers
/// the retry/brownout discipline keys on.
#[derive(Debug, Clone, Copy)]
struct Reply {
    status: u16,
    /// The daemon's computed backoff hint (seconds), present on sheds.
    retry_after: Option<u64>,
    /// The response was served in brownout (`x-maestro-degraded`).
    degraded: bool,
}

enum Outcome {
    Status(Reply),
    /// Connect failure or reset before any byte arrived.
    Refused,
    /// Bytes arrived but the response never completed (or was garbage).
    Dropped,
}

/// One HTTP exchange on a fresh connection.
fn exchange(addr: &SocketAddr, raw: &[u8], io_timeout: Duration) -> Outcome {
    let mut s = match TcpStream::connect_timeout(addr, io_timeout) {
        Ok(s) => s,
        Err(_) => return Outcome::Refused,
    };
    let _ = s.set_read_timeout(Some(io_timeout));
    let _ = s.set_write_timeout(Some(io_timeout));
    if s.write_all(raw).is_err() {
        return Outcome::Refused;
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
        if let Some((reply, complete)) = classify(&buf) {
            if complete {
                return Outcome::Status(reply);
            }
        }
    }
    if buf.is_empty() {
        return Outcome::Refused;
    }
    match classify(&buf) {
        Some((reply, true)) => Outcome::Status(reply),
        _ => Outcome::Dropped,
    }
}

/// Parse a response prefix: `Some((reply, body_complete))` once the
/// status line and headers are readable. `Content-Length` responses
/// complete at the declared byte count; EOF-framed NDJSON streams
/// complete once the `"final":true` marker line fully arrived — a stream
/// cut before it is an incomplete (dropped) response.
fn classify(buf: &[u8]) -> Option<(Reply, bool)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let reply = Reply {
        status,
        retry_after: head
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .and_then(|v| v.trim().parse().ok()),
        degraded: head.lines().any(|l| l.starts_with("x-maestro-degraded:")),
    };
    let body = &buf[head_end + 4..];
    match head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(content_length) => Some((reply, body.len() >= content_length)),
        None if head.contains("application/x-ndjson") => Some((reply, stream_complete(body))),
        None => None,
    }
}

/// A newline-terminated body whose last line carries the final marker.
fn stream_complete(body: &[u8]) -> bool {
    if !body.ends_with(b"\n") {
        return false;
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return false;
    };
    text.lines()
        .next_back()
        .is_some_and(|l| l.contains("\"final\":true"))
}

struct WorkerArgs {
    addr: SocketAddr,
    cfg: Config,
    stop: Arc<AtomicBool>,
    seed: u64,
}

fn batch_body(rng: &mut Rng, deadline_ms: u64) -> String {
    const LAYERS: [&str; 4] = ["CONV1", "CONV2", "CONV3", "CONV5"];
    let points: Vec<String> = (0..8)
        .map(|_| {
            format!(
                "{{\"model\":\"alexnet\",\"layer\":\"{}\",\"pes\":64,\"bw\":{}}}",
                LAYERS[rng.below(LAYERS.len() as u64) as usize],
                1 << rng.below(6),
            )
        })
        .collect();
    format!(
        "{{\"deadline_ms\":{deadline_ms},\"points\":[{}]}}",
        points.join(",")
    )
}

fn stream_body(deadline_ms: u64) -> String {
    format!(
        "{{\"model\":\"alexnet\",\"layer\":\"CONV3\",\"style\":\"KC-P\",\
         \"space\":\"tiny\",\"stream\":true,\"deadline_ms\":{deadline_ms}}}"
    )
}

fn request_body(mode: &str, rng: &mut Rng, deadline_ms: u64) -> (String, String) {
    // Rotate layers so the shared cache sees both hits and misses.
    const LAYERS: [&str; 4] = ["CONV1", "CONV2", "CONV3", "CONV5"];
    if mode == "batch" {
        return ("/v1/batch".to_string(), batch_body(rng, deadline_ms));
    }
    if mode == "stream" {
        return ("/v1/dse".to_string(), stream_body(deadline_ms));
    }
    if mode == "mixed" {
        match rng.below(10) {
            0 => {
                return (
                    "/v1/dse".to_string(),
                    format!(
                        "{{\"model\":\"alexnet\",\"layer\":\"CONV3\",\"style\":\"KC-P\",\
                         \"space\":\"tiny\",\"deadline_ms\":{deadline_ms}}}"
                    ),
                )
            }
            1 => {
                return (
                    "/v1/conform".to_string(),
                    format!("{{\"cases\":3,\"deadline_ms\":{deadline_ms}}}"),
                )
            }
            2 => return ("/v1/batch".to_string(), batch_body(rng, deadline_ms)),
            3 => return ("/v1/dse".to_string(), stream_body(deadline_ms)),
            _ => {}
        }
    }
    let layer = LAYERS[rng.below(LAYERS.len() as u64) as usize];
    (
        "/v1/analyze".to_string(),
        format!(
            "{{\"model\":\"alexnet\",\"layer\":\"{layer}\",\"pes\":64,\
             \"bw\":{},\"deadline_ms\":{deadline_ms}}}",
            1 << rng.below(6),
        ),
    )
}

fn worker(args: WorkerArgs) -> Tally {
    let mut tally = Tally::default();
    let mut rng = Rng::new(args.seed);
    let io_timeout = Duration::from_millis(args.cfg.deadline_ms.max(1000) * 2);
    // Open loop: this thread's share of the offered rate, as a fixed tick
    // schedule anchored at the thread's start.
    let tick_secs = if args.cfg.offered_rate > 0.0 {
        args.cfg.concurrency.max(1) as f64 / args.cfg.offered_rate
    } else {
        0.0
    };
    let epoch = Instant::now();
    let mut next_tick: u64 = 0;
    while !args.stop.load(Ordering::Relaxed) {
        if tick_secs > 0.0 {
            let due = Duration::from_secs_f64(next_tick as f64 * tick_secs);
            let now = epoch.elapsed();
            if now < due {
                std::thread::sleep(due - now);
            } else {
                // Fell behind the schedule: the ticks that already passed
                // are *missed* offered load, not a quietly lower rate.
                let behind = ((now - due).as_secs_f64() / tick_secs) as u64;
                tally.missed += behind;
                next_tick += behind;
            }
            next_tick += 1;
        }
        let (path, body) = request_body(&args.cfg.mode, &mut rng, args.cfg.deadline_ms);
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        tally.sent += 1;
        let budget = Duration::from_millis(args.cfg.budget_ms);
        let t0 = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            let outcome = exchange(&args.addr, raw.as_bytes(), io_timeout);
            let (retryable, hint) = match &outcome {
                Outcome::Status(r) if r.status == 503 => (true, r.retry_after),
                Outcome::Refused => (true, None),
                _ => (false, None),
            };
            if !retryable || attempt >= args.cfg.retries || args.stop.load(Ordering::Relaxed) {
                break outcome;
            }
            // Exponential backoff with jitter, floored at the server's
            // computed Retry-After hint, capped at 800 ms per step (the
            // cap yields to a larger hint) — all inside the request's
            // deadline budget.
            let base = Duration::from_millis(25u64.saturating_mul(1 << attempt.min(8)));
            let floor = hint.map(Duration::from_secs).unwrap_or(Duration::ZERO);
            let cap = base.max(floor).min(Duration::from_millis(800).max(floor));
            let jitter = cap.saturating_sub(floor);
            let sleep = floor + Duration::from_micros(rng.below(jitter.as_micros().max(1) as u64));
            if t0.elapsed() + sleep >= budget {
                break outcome;
            }
            std::thread::sleep(sleep);
            attempt += 1;
            tally.retries += 1;
        };
        match outcome {
            Outcome::Status(r) if (200..300).contains(&r.status) => {
                tally.ok += 1;
                if r.degraded {
                    tally.degraded += 1;
                }
                tally.latencies_us.push(t0.elapsed().as_micros() as u64);
            }
            Outcome::Status(r) if r.status == 503 => tally.shed += 1,
            Outcome::Status(r) if r.status == 504 => tally.timeout += 1,
            Outcome::Status(r) if (400..500).contains(&r.status) => tally.client_error += 1,
            Outcome::Status(_) => tally.server_error += 1,
            Outcome::Refused => tally.refused += 1,
            Outcome::Dropped => tally.dropped += 1,
        }
    }
    tally
}

/// The machine-readable run report.
#[derive(Debug, Serialize)]
struct LoadReport {
    addr: String,
    mode: String,
    concurrency: usize,
    seconds: f64,
    /// Configured open-loop offered rate (req/s); 0 = closed loop.
    offered_rate: f64,
    /// Ticks due under the open-loop schedule (`sent + missed`).
    offered: u64,
    /// Open-loop ticks the client could not fire on time.
    missed: u64,
    sent: u64,
    ok: u64,
    /// 2xx responses carrying the brownout `x-maestro-degraded` marker
    /// (a subset of `ok`).
    degraded: u64,
    shed: u64,
    timeout: u64,
    client_error: u64,
    server_error: u64,
    refused: u64,
    dropped: u64,
    retries: u64,
    qps: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn main() {
    let cfg = parse_args();
    let addr: SocketAddr = cfg
        .addr
        .to_socket_addrs()
        .expect("resolvable --addr")
        .next()
        .expect("at least one address");
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let seed0 = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    let handles: Vec<_> = (0..cfg.concurrency.max(1))
        .map(|i| {
            let args = WorkerArgs {
                addr,
                cfg: cfg.clone(),
                stop: Arc::clone(&stop),
                seed: seed0 ^ ((i as u64 + 1) * 0x9E37_79B9_7F4A_7C15),
            };
            std::thread::spawn(move || worker(args))
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(cfg.seconds));
    stop.store(true, Ordering::Relaxed);
    let mut total = Tally::default();
    for h in handles {
        total.merge(h.join().expect("worker thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    total.latencies_us.sort_unstable();
    let report = LoadReport {
        addr: cfg.addr.clone(),
        mode: cfg.mode.clone(),
        concurrency: cfg.concurrency,
        seconds: elapsed,
        offered_rate: cfg.offered_rate,
        offered: total.sent + total.missed,
        missed: total.missed,
        sent: total.sent,
        ok: total.ok,
        degraded: total.degraded,
        shed: total.shed,
        timeout: total.timeout,
        client_error: total.client_error,
        server_error: total.server_error,
        refused: total.refused,
        dropped: total.dropped,
        retries: total.retries,
        qps: total.ok as f64 / elapsed.max(1e-9),
        p50_ms: percentile_ms(&total.latencies_us, 0.50),
        p90_ms: percentile_ms(&total.latencies_us, 0.90),
        p99_ms: percentile_ms(&total.latencies_us, 0.99),
        max_ms: percentile_ms(&total.latencies_us, 1.0),
    };
    if !cfg.out.is_empty() {
        let text = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&cfg.out, text + "\n").expect("write --out");
    }
    if cfg.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serialize report")
        );
    } else {
        println!(
            "loadgen: {} req in {:.2}s against {} ({} x {} mode)",
            report.sent, report.seconds, report.addr, report.concurrency, report.mode
        );
        if report.offered_rate > 0.0 {
            println!(
                "  open loop  {:.1} req/s offered — {} due, {} fired, {} missed",
                report.offered_rate, report.offered, report.sent, report.missed
            );
        }
        println!(
            "  outcomes   {} ok ({} degraded), {} shed(503), {} timeout(504), {} 4xx, {} 5xx, {} refused, {} dropped, {} retries",
            report.ok, report.degraded, report.shed, report.timeout, report.client_error,
            report.server_error, report.refused, report.dropped, report.retries
        );
        println!(
            "  throughput {:.1} ok/s — latency p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            report.qps, report.p50_ms, report.p90_ms, report.p99_ms, report.max_ms
        );
    }
    // The drain guarantee is part of loadgen's contract: any response
    // that started but never completed is a hard failure.
    if report.dropped > 0 {
        println!("FAIL: {} dropped (incomplete) responses", report.dropped);
        std::process::exit(1);
    }
    // A run where nothing succeeded cannot support a latency claim.
    if report.ok == 0 {
        println!("FAIL: no successful requests");
        std::process::exit(1);
    }
}

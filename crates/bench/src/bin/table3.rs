//! Regenerates paper Table 3: the five dataflow styles in the textual DSL,
//! with their characteristics.

use maestro_ir::Style;

fn main() {
    println!("Table 3 — the five evaluated dataflow styles\n");
    for s in Style::ALL {
        println!("== {} ({}) ==", s.short_name(), s.alias());
        println!("{}", s.dataflow());
        println!("characteristics: {}\n", s.characteristics());
    }
}

//! Regenerates paper Table 1: reuse opportunities per spatially-mapped
//! dimension and per innermost temporally-mapped dimension, for CONV2D.

use maestro_core::reuse::opportunity_table;
use maestro_dnn::Coupling;

fn main() {
    let table = opportunity_table(&Coupling::conv2d());
    println!("Table 1 — reuse opportunities (CONV2D coupling)");
    println!(
        "{:<6} | {:^33} | {:^33}",
        "", "Spatially mapped", "Innermost temporal"
    );
    println!(
        "{:<6} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "Dim", "Input", "Filter", "Output", "Input", "Filter", "Output"
    );
    println!("{}", "-".repeat(78));
    for row in table {
        println!(
            "{:<6} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            row.dim.to_string(),
            row.spatial[0].to_string(),
            row.spatial[1].to_string(),
            row.spatial[2].to_string(),
            row.temporal[0].to_string(),
            row.temporal[1].to_string(),
            row.temporal[2].to_string(),
        );
    }
    println!("\nDepthwise coupling (output follows C, no channel reduction):");
    for row in opportunity_table(&Coupling::depthwise()) {
        println!(
            "{:<6} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            row.dim.to_string(),
            row.spatial[0].to_string(),
            row.spatial[1].to_string(),
            row.spatial[2].to_string(),
            row.temporal[0].to_string(),
            row.temporal[1].to_string(),
            row.temporal[2].to_string(),
        );
    }
}

//! Shared fixtures for the figure/table regeneration binaries and the
//! criterion benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates its rows/series with this workspace's
//! implementation (see DESIGN.md's per-experiment index); absolute numbers
//! come from our synthetic 28 nm calibration, so the *shapes* — who wins,
//! by what factor, where the crossovers are — are the reproduction target.

use maestro_dnn::{zoo, Layer, Model};
use maestro_hw::Accelerator;

/// The 256-PE / 32 GB/s configuration of the Figure 10–12 case studies.
pub fn case_study_acc() -> Accelerator {
    Accelerator::paper_case_study()
}

/// The five evaluation models of Figure 10 (batch 1).
pub fn figure10_models() -> Vec<Model> {
    zoo::figure10_models(1)
}

/// The four representative operators of Figure 11:
/// (label, model, layer name).
pub fn figure11_operators() -> Vec<(&'static str, Model, String)> {
    vec![
        ("Early layer", zoo::resnet50(1), "CONV1".to_string()),
        ("Late layer", zoo::vgg16(1), "CONV13".to_string()),
        ("Depth-wise", zoo::mobilenet_v2(1), "BN2_1_dw".to_string()),
        (
            "Point-wise",
            zoo::mobilenet_v2(1),
            "BN2_1_expand".to_string(),
        ),
    ]
}

/// Fetch a layer from a model or panic with a clear message (fixture use).
pub fn layer<'m>(model: &'m Model, name: &str) -> &'m Layer {
    model
        .layer(name)
        .unwrap_or_else(|| panic!("{} has no layer {name}", model.name))
}

/// The `--threads <n>` argument of a figure binary (`0`, the default,
/// means one worker per core — see [`maestro_dse::resolve_threads`]).
pub fn threads_arg() -> usize {
    let mut argv = std::env::args();
    while let Some(a) = argv.next() {
        if a == "--threads" {
            let v = argv.next().unwrap_or_default();
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--threads expects an integer, got `{v}`"));
        }
    }
    0
}

/// Apply `f` to every item on up to `threads` scoped worker threads
/// (`0` = one per core), returning results **in input order** regardless
/// of scheduling — the bench binaries print tables, so output must not
/// depend on thread interleaving.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = maestro_dse::resolve_threads(threads).clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        mine.push((i, f(item)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for (i, u) in per_worker.into_iter().flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item mapped"))
        .collect()
}

/// Format a count with engineering suffixes (`12.3M`, `1.2G`).
pub fn eng(v: f64) -> String {
    let (value, suffix) = if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    format!("{value:.2}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_resolve() {
        assert_eq!(figure10_models().len(), 5);
        for (label, m, l) in figure11_operators() {
            assert!(m.layer(&l).is_some(), "{label}: {l}");
        }
        let vgg = zoo::vgg16(1);
        let _ = layer(&vgg, "CONV2");
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map(&items, 1, |v| v * 3);
        for threads in [2, 8] {
            assert_eq!(parallel_map(&items, threads, |v| v * 3), seq);
        }
        assert!(parallel_map(&[] as &[u64], 4, |v| *v).is_empty());
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(1234.0), "1.23k");
        assert_eq!(eng(12.0), "12.00");
        assert_eq!(eng(2.5e9), "2.50G");
        assert_eq!(eng(3.1e6), "3.10M");
    }
}

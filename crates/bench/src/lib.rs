//! Shared fixtures for the figure/table regeneration binaries and the
//! criterion benchmarks.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates its rows/series with this workspace's
//! implementation (see DESIGN.md's per-experiment index); absolute numbers
//! come from our synthetic 28 nm calibration, so the *shapes* — who wins,
//! by what factor, where the crossovers are — are the reproduction target.

use maestro_dnn::{zoo, Layer, Model};
use maestro_hw::Accelerator;

/// The 256-PE / 32 GB/s configuration of the Figure 10–12 case studies.
pub fn case_study_acc() -> Accelerator {
    Accelerator::paper_case_study()
}

/// The five evaluation models of Figure 10 (batch 1).
pub fn figure10_models() -> Vec<Model> {
    zoo::figure10_models(1)
}

/// The four representative operators of Figure 11:
/// (label, model, layer name).
pub fn figure11_operators() -> Vec<(&'static str, Model, String)> {
    vec![
        ("Early layer", zoo::resnet50(1), "CONV1".to_string()),
        ("Late layer", zoo::vgg16(1), "CONV13".to_string()),
        (
            "Depth-wise",
            zoo::mobilenet_v2(1),
            "BN2_1_dw".to_string(),
        ),
        (
            "Point-wise",
            zoo::mobilenet_v2(1),
            "BN2_1_expand".to_string(),
        ),
    ]
}

/// Fetch a layer from a model or panic with a clear message (fixture use).
pub fn layer<'m>(model: &'m Model, name: &str) -> &'m Layer {
    model
        .layer(name)
        .unwrap_or_else(|| panic!("{} has no layer {name}", model.name))
}

/// Format a count with engineering suffixes (`12.3M`, `1.2G`).
pub fn eng(v: f64) -> String {
    let (value, suffix) = if v >= 1e9 {
        (v / 1e9, "G")
    } else if v >= 1e6 {
        (v / 1e6, "M")
    } else if v >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    format!("{value:.2}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_resolve() {
        assert_eq!(figure10_models().len(), 5);
        for (label, m, l) in figure11_operators() {
            assert!(m.layer(&l).is_some(), "{label}: {l}");
        }
        let vgg = zoo::vgg16(1);
        let _ = layer(&vgg, "CONV2");
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(1234.0), "1.23k");
        assert_eq!(eng(12.0), "12.00");
        assert_eq!(eng(2.5e9), "2.50G");
        assert_eq!(eng(3.1e6), "3.10M");
    }
}

//! Benchmarks the cost of one analytical-model evaluation (§4.5 reports
//! ~10 ms per MAESTRO run; this implementation is far below that) and of
//! the supporting phases (resolution, parsing).

use criterion::{criterion_group, criterion_main, Criterion};
use maestro_core::analyze;
use maestro_dnn::zoo;
use maestro_hw::Accelerator;
use maestro_ir::{parse::parse_dataflow, resolve, Style};
use std::hint::black_box;

fn bench_analyze(c: &mut Criterion) {
    let vgg = zoo::vgg16(1);
    let acc = Accelerator::paper_case_study();
    let mut g = c.benchmark_group("analyze");
    for lname in ["CONV2", "CONV11"] {
        let layer = vgg.layer(lname).expect("zoo layer");
        for style in [Style::KCP, Style::YRP] {
            let df = style.dataflow();
            g.bench_function(format!("{lname}/{style}"), |b| {
                b.iter(|| analyze(black_box(layer), black_box(&df), black_box(&acc)).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_whole_network(c: &mut Criterion) {
    let acc = Accelerator::paper_case_study();
    let df = Style::KCP.dataflow();
    let resnet = zoo::resnet50(1);
    c.bench_function("analyze_model/resnet50-70-layers", |b| {
        b.iter(|| maestro_core::analyze_model(black_box(&resnet), &df, &acc).unwrap())
    });
}

fn bench_resolve_and_parse(c: &mut Criterion) {
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let df = Style::YRP.dataflow();
    c.bench_function("resolve/YR-P", |b| {
        b.iter(|| resolve(black_box(&df), black_box(layer), 256).unwrap())
    });
    let text = df.to_string();
    c.bench_function("parse/YR-P", |b| {
        b.iter(|| parse_dataflow(black_box(&text)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_analyze,
    bench_whole_network,
    bench_resolve_and_parse
);
criterion_main!(benches);

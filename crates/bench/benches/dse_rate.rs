//! Benchmarks the design-space-exploration rate (the paper reports an
//! average effective rate of 0.17M designs/second; Figure 13(c)).

use criterion::{criterion_group, criterion_main, Criterion};
use maestro_dnn::zoo;
use maestro_dse::{variants, EvalMode, Explorer, SweepSpace};
use maestro_ir::Style;
use std::hint::black_box;

fn bench_dse(c: &mut Criterion) {
    let vgg = zoo::vgg16(1);
    let mut g = c.benchmark_group("dse");
    g.sample_size(10);
    for (lname, style) in [("CONV2", Style::KCP), ("CONV11", Style::YRP)] {
        let layer = vgg.layer(lname).expect("zoo layer");
        let maps = variants::variants(style);
        g.bench_function(format!("{style}/{lname}/standard-space"), |b| {
            b.iter(|| {
                let e = Explorer::new(SweepSpace::standard());
                let r = e
                    .explore(black_box(layer), black_box(&maps))
                    .expect("valid sweep space");
                assert!(r.stats.valid > 0);
                r.stats.explored
            })
        });
    }
    g.finish();
}

fn bench_dse_parallel(c: &mut Criterion) {
    // Ablation: the thread-parallel explorer vs the serial one on the
    // same space (the paper runs four DSEs concurrently on a Xeon).
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let maps = variants::variants(Style::KCP);
    let mut g = c.benchmark_group("dse-parallel-ablation");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| {
                let e = Explorer::new(SweepSpace::standard());
                let r = e
                    .explore_parallel(black_box(layer), black_box(&maps), threads)
                    .expect("valid sweep space");
                assert!(r.stats.valid > 0);
                r.stats.explored
            })
        });
    }
    g.finish();
}

fn bench_dse_eval_modes(c: &mut Criterion) {
    // Ablation: staged evaluation (NoC-independent stages shared across
    // the bandwidth axis) vs. the fused cost model per grid point. Both
    // are bit-identical; this group tracks how much of the sweep the
    // staged split actually saves.
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let maps = variants::variants(Style::KCP);
    let mut g = c.benchmark_group("dse-eval-mode-ablation");
    g.sample_size(10);
    for eval in [EvalMode::Full, EvalMode::Staged] {
        g.bench_function(format!("{eval}"), |b| {
            b.iter(|| {
                let mut e = Explorer::new(SweepSpace::standard());
                e.eval = eval;
                let r = e
                    .explore(black_box(layer), black_box(&maps))
                    .expect("valid sweep space");
                assert!(r.stats.valid > 0);
                r.stats.explored
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dse, bench_dse_parallel, bench_dse_eval_modes);
criterion_main!(benches);

//! Benchmarks the full Figure 10 sweep: five dataflows across the five
//! evaluation networks (231 layers), demonstrating that whole-suite
//! evaluation is interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use maestro_core::{analyze, analyze_model_with};
use maestro_dnn::zoo;
use maestro_hw::Accelerator;
use maestro_ir::Style;

fn bench_fig10(c: &mut Criterion) {
    let acc = Accelerator::paper_case_study();
    let models = zoo::figure10_models(1);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("five-models-x-five-dataflows", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for model in &models {
                for style in Style::ALL {
                    let r = analyze_model_with(model, &acc, |l| {
                        let df = style.dataflow();
                        if analyze(l, &df, &acc).is_ok() {
                            df
                        } else {
                            Style::XP.dataflow()
                        }
                    })
                    .expect("model analysis");
                    total += r.runtime();
                }
            }
            total
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

//! Benchmarks the reference simulator against the analytical model on one
//! layer, quantifying the speed gap the paper reports against RTL
//! (1029-4116x); the step-exact simulator sits in between.

use criterion::{criterion_group, criterion_main, Criterion};
use maestro_core::analyze;
use maestro_dnn::{Layer, LayerDims, Operator};
use maestro_hw::Accelerator;
use maestro_ir::Style;
use maestro_sim::{simulate, SimOptions};
use std::hint::black_box;

fn bench_model_vs_sim(c: &mut Criterion) {
    let layer = Layer::new("c", Operator::conv2d(), LayerDims::square(1, 32, 32, 34, 3));
    let acc = Accelerator::builder(64).build();
    let df = Style::KCP.dataflow();
    c.bench_function("model/32x32x32conv", |b| {
        b.iter(|| analyze(black_box(&layer), &df, &acc).unwrap())
    });
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("sim/32x32x32conv", |b| {
        b.iter(|| simulate(black_box(&layer), &df, &acc, SimOptions::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_model_vs_sim);
criterion_main!(benches);

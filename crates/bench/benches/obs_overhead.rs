//! Guard: observability must be near-free when no sink is installed.
//!
//! The spans and metrics wired through `analyze` and the DSE sweep are
//! compiled in unconditionally, so their *disabled* cost is what every
//! un-instrumented user pays. This bench measures that cost directly —
//! nanoseconds per disabled span guard and per gated log macro — then
//! runs a real DSE sweep (no trace sink, logging off) and bounds the
//! implied instrumentation share of the sweep's wall time. The build
//! fails the guard if that share reaches 2%.

use maestro_dnn::zoo;
use maestro_dse::{variants, Explorer, SweepSpace};
use maestro_ir::Style;
use std::hint::black_box;
use std::time::Instant;

/// Spans inside one `analyze` call: the root plus the four engine stages.
const SPANS_PER_ANALYZE: u64 = 5;

fn main() {
    maestro_obs::log::set_level(maestro_obs::Level::Off);
    assert!(
        !maestro_obs::span::is_enabled(),
        "span collection must start disabled"
    );

    // Per-call cost of a disabled span guard (one relaxed atomic load).
    let n: u64 = 20_000_000;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = black_box(maestro_obs::span::span(black_box("bench.disabled")));
    }
    let span_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    // Per-call cost of a gated-off log macro (one relaxed load, no format).
    let t0 = Instant::now();
    for i in 0..n {
        maestro_obs::debug!("disabled {}", black_box(i));
    }
    let log_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    // A real sweep with everything disabled — the production configuration.
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let maps = variants::variants(Style::KCP);
    let t0 = Instant::now();
    let e = Explorer::new(SweepSpace::standard());
    let r = e
        .explore(black_box(layer), black_box(&maps))
        .expect("valid sweep space");
    let sweep_s = t0.elapsed().as_secs_f64();
    assert!(r.stats.valid > 0);

    // Instrumentation touch points in that sweep: five span guards per
    // cost-model call, one span guard plus one batched metric flush
    // (~10 atomic adds, costed here at one span each for headroom) per
    // work unit, and one cache-drop flush per unit.
    let units = e.space.pes.len() as u64;
    let touches = SPANS_PER_ANALYZE * r.stats.evaluated + units * 12;
    let implied_s = touches as f64 * span_ns * 1e-9;
    let share = 100.0 * implied_s / sweep_s;

    println!("obs-overhead guard (no sink installed)");
    println!("  disabled span guard   {span_ns:>8.2} ns/call");
    println!("  gated-off log macro   {log_ns:>8.2} ns/call");
    println!(
        "  DSE sweep             {sweep_s:>8.3} s wall, {} cost-model calls, {units} units",
        r.stats.evaluated
    );
    println!("  instrumentation share {share:>8.4} % of sweep wall time ({touches} touch points)");

    assert!(
        share < 2.0,
        "disabled instrumentation costs {share:.3}% of the sweep — over the 2% budget"
    );
    println!("PASS: under the 2% overhead budget");
}

//! Guard: observability must be near-free when no sink is installed.
//!
//! The spans and metrics wired through `analyze` and the DSE sweep are
//! compiled in unconditionally, so their *disabled* cost is what every
//! un-instrumented user pays. This bench measures that cost directly —
//! nanoseconds per disabled span guard and per gated log macro — then
//! runs a real DSE sweep (no trace sink, logging off) and bounds the
//! implied instrumentation share of the sweep's wall time. The build
//! fails the guard if that share reaches 2%.

use maestro_dnn::zoo;
use maestro_dse::{variants, Explorer, SweepSpace};
use maestro_ir::Style;
use std::hint::black_box;
use std::time::Instant;

/// Spans inside one `analyze` call: the root plus the four engine stages.
const SPANS_PER_ANALYZE: u64 = 5;

fn main() {
    maestro_obs::log::set_level(maestro_obs::Level::Off);
    assert!(
        !maestro_obs::span::is_enabled(),
        "span collection must start disabled"
    );

    // Per-call cost of a disabled span guard (one relaxed atomic load).
    let n: u64 = 20_000_000;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = black_box(maestro_obs::span::span(black_box("bench.disabled")));
    }
    let span_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    // Per-call cost of a gated-off log macro (one relaxed load, no format).
    let t0 = Instant::now();
    for i in 0..n {
        maestro_obs::debug!("disabled {}", black_box(i));
    }
    let log_ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;

    // Enabled-path tracing costs (the per-request price when `serve`
    // runs with its default 1-in-16 tail sampling). Three components:
    // drawing + installing a trace context, offering a sampled-out
    // record to the flight recorder (the common case), and retaining a
    // kept record in the ring.
    maestro_obs::trace::seed_trace_ids(0xbe9c);
    let m: u64 = 2_000_000;
    let t0 = Instant::now();
    for _ in 0..m {
        let id = maestro_obs::trace::next_trace_id();
        let prev = maestro_obs::trace::set_current(black_box(id));
        maestro_obs::trace::clear_current(prev);
    }
    let ctx_ns = t0.elapsed().as_secs_f64() * 1e9 / m as f64;

    let mk_rec = |id: maestro_obs::TraceId| maestro_obs::TraceRecord {
        id,
        name: "POST /v1/analyze".to_string(),
        status: 200,
        start_unix_ms: 0,
        total_us: 500,
        bytes: 900,
        phases: vec![
            maestro_obs::Phase {
                name: "queue",
                start_us: 0,
                dur_us: 30,
            },
            maestro_obs::Phase {
                name: "parse",
                start_us: 30,
                dur_us: 90,
            },
            maestro_obs::Phase {
                name: "analyze",
                start_us: 120,
                dur_us: 290,
            },
            maestro_obs::Phase {
                name: "serialize",
                start_us: 410,
                dur_us: 90,
            },
        ],
        kept: maestro_obs::KeepReason::Sampled,
    };
    let dropped = maestro_obs::FlightRecorder::new(maestro_obs::FlightPolicy {
        capacity: 256,
        sample_k: 0, // every offer is sampled out: the common case
        slow_us: u64::MAX,
    });
    let t0 = Instant::now();
    for i in 0..m {
        black_box(dropped.record(mk_rec(maestro_obs::TraceId(u128::from(i)))));
    }
    let drop_ns = t0.elapsed().as_secs_f64() * 1e9 / m as f64;

    let kept = maestro_obs::FlightRecorder::new(maestro_obs::FlightPolicy {
        capacity: 256,
        sample_k: 1, // every offer is retained (ring churn included)
        slow_us: u64::MAX,
    });
    let t0 = Instant::now();
    for i in 0..m {
        black_box(kept.record(mk_rec(maestro_obs::TraceId(u128::from(i)))));
    }
    let keep_ns = t0.elapsed().as_secs_f64() * 1e9 / m as f64;

    // A real sweep with everything disabled — the production configuration.
    let vgg = zoo::vgg16(1);
    let layer = vgg.layer("CONV2").expect("zoo layer");
    let maps = variants::variants(Style::KCP);
    let t0 = Instant::now();
    let e = Explorer::new(SweepSpace::standard());
    let r = e
        .explore(black_box(layer), black_box(&maps))
        .expect("valid sweep space");
    let sweep_s = t0.elapsed().as_secs_f64();
    assert!(r.stats.valid > 0);

    // Instrumentation touch points in that sweep: five span guards per
    // cost-model call, one span guard plus one batched metric flush
    // (~10 atomic adds, costed here at one span each for headroom) per
    // work unit, and one cache-drop flush per unit.
    let units = e.space.pes.len() as u64;
    let touches = SPANS_PER_ANALYZE * r.stats.evaluated + units * 12;
    let implied_s = touches as f64 * span_ns * 1e-9;
    let share = 100.0 * implied_s / sweep_s;

    println!("obs-overhead guard (no sink installed)");
    println!("  disabled span guard   {span_ns:>8.2} ns/call");
    println!("  gated-off log macro   {log_ns:>8.2} ns/call");
    println!("enabled tracing (per request, building the record included)");
    println!("  trace context         {ctx_ns:>8.2} ns (draw ID + install + clear)");
    println!("  record, sampled out   {drop_ns:>8.2} ns (the 15-in-16 case)");
    println!("  record, kept          {keep_ns:>8.2} ns (ring insert + eviction)");
    println!(
        "  DSE sweep             {sweep_s:>8.3} s wall, {} cost-model calls, {units} units",
        r.stats.evaluated
    );
    println!("  instrumentation share {share:>8.4} % of sweep wall time ({touches} touch points)");

    assert!(
        share < 2.0,
        "disabled instrumentation costs {share:.3}% of the sweep — over the 2% budget"
    );
    // Even the worst enabled path (record built *and* kept) must stay
    // in single-digit microseconds — noise against a multi-hundred-µs
    // request, and three orders below the io-timeout scale.
    assert!(
        keep_ns < 10_000.0,
        "kept-record cost is {keep_ns:.0} ns — tracing is no longer cheap"
    );
    println!("PASS: under the 2% overhead budget");
}

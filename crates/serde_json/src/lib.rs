//! Offline stand-in for `serde_json`: JSON output for types implementing
//! the local `serde` shim's `Serialize`.
//!
//! Only the entry points this workspace calls are provided. Serialization
//! is infallible (non-finite floats are written as `null`), so the
//! `Result` return types exist purely for call-site compatibility.

use std::fmt;

/// Serialization error. Never produced by this shim; kept so call sites
/// written against real `serde_json` compile unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut w = serde::JsonWriter::new(false);
    value.serialize(&mut w);
    Ok(w.into_string())
}

/// Serialize `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut w = serde::JsonWriter::new(true);
    value.serialize(&mut w);
    Ok(w.into_string())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u64,
        y: f64,
        label: String,
    }

    #[derive(Serialize, Deserialize)]
    enum Shape {
        Dot,
        Circle(f64),
        Segment(f64, f64),
        Rect { w: f64, h: f64 },
    }

    #[derive(Serialize, Deserialize)]
    struct Wrapper(Vec<u64>);

    #[test]
    fn derived_struct_roundtrip_text() {
        let p = Point {
            x: 3,
            y: 1.5,
            label: "origin".into(),
        };
        assert_eq!(
            super::to_string(&p).unwrap(),
            "{\"x\":3,\"y\":1.5,\"label\":\"origin\"}"
        );
        assert!(super::to_string_pretty(&p)
            .unwrap()
            .contains("\n  \"x\": 3"));
    }

    #[test]
    fn derived_enum_external_tagging() {
        assert_eq!(super::to_string(&Shape::Dot).unwrap(), "\"Dot\"");
        assert_eq!(
            super::to_string(&Shape::Circle(2.0)).unwrap(),
            "{\"Circle\":2}"
        );
        assert_eq!(
            super::to_string(&Shape::Segment(1.0, 2.0)).unwrap(),
            "{\"Segment\":[1,2]}"
        );
        assert_eq!(
            super::to_string(&Shape::Rect { w: 2.0, h: 3.0 }).unwrap(),
            "{\"Rect\":{\"w\":2,\"h\":3}}"
        );
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(super::to_string(&Wrapper(vec![1, 2])).unwrap(), "[1,2]");
    }
}
